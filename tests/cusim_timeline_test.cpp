// cusim::timeline unit coverage: recording gates, node and edge
// construction for every lane (host filler, legacy device, streams), the
// exact critical-path tiling invariant (the path tiles [0, makespan] with
// bitwise end==start handoffs and zero accounted gap), bubbles and
// utilization, fault interaction (failed nodes carry no edges), prof
// correlation-id sharing, and the report JSON round-trip. The bit-identity
// contract across engine thread counts lives in cusim_stream_diff_test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "cupp/detail/minijson.hpp"
#include "cusim/cusim.hpp"
#include "cusim/faults.hpp"
#include "cusim/prof.hpp"
#include "cusim/timeline.hpp"

namespace {

using namespace cusim;

KernelTask fill_kernel(ThreadCtx& ctx, DevicePtr<int> out, int value) {
    out.write(ctx, ctx.global_id(), value);
    co_return;
}

KernelTask burn_kernel(ThreadCtx& ctx, DevicePtr<int> out, int value) {
    ctx.charge(Op::FMad, 1'000'000);
    out.write(ctx, ctx.global_id(), value);
    co_return;
}

LaunchConfig small_cfg() { return LaunchConfig{dim3{2}, dim3{16}}; }

/// Fresh recorder per test; nothing leaks into the next one.
class TimelineTest : public ::testing::Test {
protected:
    void SetUp() override {
        timeline::reset();
        timeline::enable();
    }
    void TearDown() override {
        timeline::reset();
        prof::reset();
        faults::disable();
        faults::reset();
    }
};

std::vector<timeline::Node> nodes_of(timeline::Category cat) {
    std::vector<timeline::Node> out;
    for (const timeline::Node& n : timeline::nodes()) {
        if (n.cat == cat) out.push_back(n);
    }
    return out;
}

/// The tentpole invariant, asserted with exact double equality: the
/// critical path tiles [0, makespan] — first node at 0, each end bitwise
/// equal to the next start, last end at the makespan, zero accounted gap —
/// so critical_path_seconds is *exactly* the makespan.
void expect_tiled(const timeline::Report& r,
                  const std::vector<timeline::Node>& ns) {
    ASSERT_FALSE(r.critical_path.empty());
    EXPECT_EQ(r.gap_seconds, 0.0);
    EXPECT_EQ(r.critical_path_seconds, r.makespan_seconds);
    EXPECT_EQ(ns[r.critical_path.front() - 1].start, 0.0);
    for (std::size_t i = 0; i + 1 < r.critical_path.size(); ++i) {
        const timeline::Node& a = ns[r.critical_path[i] - 1];
        const timeline::Node& b = ns[r.critical_path[i + 1] - 1];
        EXPECT_EQ(a.end, b.start) << "path breaks between node " << a.id
                                  << " and node " << b.id;
    }
    EXPECT_EQ(ns[r.critical_path.back() - 1].end, r.makespan_seconds);
}

TEST_F(TimelineTest, DisabledByDefaultRecordsNothing) {
    timeline::reset();  // undo the fixture's enable
    EXPECT_FALSE(timeline::enabled());
    Device dev(tiny_properties());
    auto buf = dev.malloc_n<int>(small_cfg().total_threads());
    dev.launch(small_cfg(), [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 1); },
               "fill");
    dev.synchronize();
    EXPECT_TRUE(timeline::nodes().empty());
}

TEST_F(TimelineTest, EnableDisableGateAndReset) {
    EXPECT_TRUE(timeline::enabled());
    timeline::disable();
    EXPECT_FALSE(timeline::enabled());
    timeline::enable();
    Device dev(tiny_properties());
    auto buf = dev.malloc_n<int>(small_cfg().total_threads());
    std::vector<int> host(small_cfg().total_threads(), 7);
    dev.upload(buf, std::span<const int>(host));
    EXPECT_FALSE(timeline::nodes().empty());
    timeline::reset();
    EXPECT_FALSE(timeline::enabled());
    EXPECT_TRUE(timeline::nodes().empty());
    EXPECT_TRUE(timeline::report_path().empty());
}

TEST_F(TimelineTest, LegacyLaunchRecordsIssueAndKernelNodes) {
    Device dev(tiny_properties());
    auto buf = dev.malloc_n<int>(small_cfg().total_threads());
    dev.launch(small_cfg(), [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 1); },
               "fill");
    dev.synchronize();

    const auto kernels = nodes_of(timeline::Category::Kernel);
    ASSERT_EQ(kernels.size(), 1u);
    EXPECT_EQ(kernels[0].name, "fill");
    EXPECT_EQ(kernels[0].lane, timeline::Lane::Device);
    EXPECT_EQ(timeline::lane_name(kernels[0]),
              "dev" + std::to_string(kernels[0].device) + ".device");
    EXPECT_GT(kernels[0].duration(), 0.0);

    // The issue cost is a host-lane node named after the launch.
    bool found_issue = false;
    for (const timeline::Node& n : timeline::nodes()) {
        if (n.lane == timeline::Lane::Host && n.name == "launch fill") {
            found_issue = true;
        }
    }
    EXPECT_TRUE(found_issue);
    const auto syncs = nodes_of(timeline::Category::Sync);
    ASSERT_EQ(syncs.size(), 1u);
    EXPECT_EQ(syncs[0].start, syncs[0].end);  // zero duration by contract
}

TEST_F(TimelineTest, KernelStartIsAnchoredToAHostNodeEndingThere) {
    Device dev(tiny_properties());
    const std::size_t n = small_cfg().total_threads();
    auto buf = dev.malloc_n<int>(n);
    // Advance the host clock first so the launch starts strictly after 0
    // and needs a real anchor (at t == 0 no binding edge is required).
    std::vector<int> host(n, 2);
    dev.upload(buf, std::span<const int>(host));
    dev.launch(small_cfg(), [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 2); },
               "fill");
    dev.synchronize();

    const std::vector<timeline::Node> ns = timeline::nodes();
    const auto kernels = nodes_of(timeline::Category::Kernel);
    ASSERT_EQ(kernels.size(), 1u);
    // A device-idle launch starts at issue time: one of its deps must be a
    // host-lane node ending exactly at the kernel's start.
    bool anchored = false;
    for (const std::uint64_t dep : kernels[0].deps) {
        const timeline::Node& d = ns[dep - 1];
        if (d.lane == timeline::Lane::Host && d.end == kernels[0].start) {
            anchored = true;
        }
    }
    EXPECT_TRUE(anchored);
}

TEST_F(TimelineTest, TransfersCarryBytesAndCategories) {
    Device dev(tiny_properties());
    const std::size_t n = small_cfg().total_threads();
    auto buf = dev.malloc_n<int>(n);
    std::vector<int> host(n, 3);
    dev.upload(buf, std::span<const int>(host));
    dev.download(std::span<int>(host), buf);

    const auto h2d = nodes_of(timeline::Category::MemcpyH2D);
    const auto d2h = nodes_of(timeline::Category::MemcpyD2H);
    ASSERT_EQ(h2d.size(), 1u);
    ASSERT_EQ(d2h.size(), 1u);
    EXPECT_EQ(h2d[0].bytes, n * sizeof(int));
    EXPECT_EQ(d2h[0].bytes, n * sizeof(int));
    EXPECT_EQ(h2d[0].lane, timeline::Lane::Host);  // legacy path blocks the host

    const timeline::Report r = timeline::analyze();
    using Idx = std::size_t;
    EXPECT_GT(r.category_seconds[static_cast<Idx>(timeline::Category::MemcpyH2D)],
              0.0);
    EXPECT_GT(r.category_seconds[static_cast<Idx>(timeline::Category::MemcpyD2H)],
              0.0);
}

TEST_F(TimelineTest, StreamOpsLandOnTheirStreamLanes) {
    Device dev(tiny_properties());
    auto buf = dev.malloc_n<int>(small_cfg().total_threads());
    const StreamId a = dev.stream_create();
    const StreamId b = dev.stream_create();
    dev.launch_async(small_cfg(),
                     [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 1); }, "ka",
                     a);
    dev.launch_async(small_cfg(),
                     [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 2); }, "kb",
                     b);
    dev.synchronize();

    const auto kernels = nodes_of(timeline::Category::Kernel);
    ASSERT_EQ(kernels.size(), 2u);
    std::map<std::string, std::uint32_t> by_name;
    for (const auto& k : kernels) {
        EXPECT_EQ(k.lane, timeline::Lane::Stream);
        by_name[k.name] = k.stream;
    }
    EXPECT_EQ(by_name["ka"], a);
    EXPECT_EQ(by_name["kb"], b);
}

TEST_F(TimelineTest, FifoEdgesOrderOpsWithinOneStream) {
    Device dev(tiny_properties());
    auto buf = dev.malloc_n<int>(small_cfg().total_threads());
    const StreamId s = dev.stream_create();
    // First kernel is compute-heavy, so the stream is still busy when the
    // second is enqueued and the FIFO edge is the binding constraint.
    dev.launch_async(small_cfg(),
                     [&](ThreadCtx& ctx) { return burn_kernel(ctx, buf, 1); },
                     "first", s);
    dev.launch_async(small_cfg(),
                     [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 2); },
                     "second", s);
    dev.stream_synchronize(s);

    const auto kernels = nodes_of(timeline::Category::Kernel);
    ASSERT_EQ(kernels.size(), 2u);
    const timeline::Node& first = kernels[0].name == "first" ? kernels[0] : kernels[1];
    const timeline::Node& second = kernels[0].name == "first" ? kernels[1] : kernels[0];
    EXPECT_NE(std::find(second.deps.begin(), second.deps.end(), first.id),
              second.deps.end())
        << "stream FIFO must be an explicit edge";
    EXPECT_EQ(first.end, second.start);  // back-to-back on the stream clock
}

TEST_F(TimelineTest, WaitEventEdgeCrossesStreams) {
    Device dev(tiny_properties());
    auto buf = dev.malloc_n<int>(small_cfg().total_threads());
    const StreamId consumer = dev.stream_create();
    const StreamId producer = dev.stream_create();
    const EventId ev = dev.event_create();
    dev.launch_async(small_cfg(),
                     [&](ThreadCtx& ctx) { return burn_kernel(ctx, buf, 1); },
                     "produce", producer);
    dev.event_record(ev, producer);
    dev.stream_wait_event(consumer, ev);
    dev.launch_async(small_cfg(),
                     [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 2); },
                     "consume", consumer);
    dev.synchronize();

    const auto records = nodes_of(timeline::Category::EventRecord);
    const auto waits = nodes_of(timeline::Category::EventWait);
    ASSERT_EQ(records.size(), 1u);
    ASSERT_EQ(waits.size(), 1u);
    EXPECT_EQ(waits[0].stream, consumer);
    EXPECT_EQ(records[0].stream, producer);
    EXPECT_NE(std::find(waits[0].deps.begin(), waits[0].deps.end(), records[0].id),
              waits[0].deps.end())
        << "the wait must edge back to the record that released it";
    EXPECT_EQ(records[0].start, records[0].end);
    EXPECT_EQ(waits[0].start, waits[0].end);
    EXPECT_GE(waits[0].start, records[0].end);
}

TEST_F(TimelineTest, WaitBindsToTheNewestExecutedRecord) {
    Device dev(tiny_properties());
    auto buf = dev.malloc_n<int>(small_cfg().total_threads());
    const StreamId s = dev.stream_create();
    const StreamId w = dev.stream_create();
    const EventId ev = dev.event_create();
    dev.event_record(ev, s);
    dev.synchronize();
    dev.launch_async(small_cfg(),
                     [&](ThreadCtx& ctx) { return burn_kernel(ctx, buf, 1); },
                     "burn", s);
    dev.event_record(ev, s);  // newest record supersedes the first
    dev.synchronize();
    dev.stream_wait_event(w, ev);
    dev.synchronize();

    const auto records = nodes_of(timeline::Category::EventRecord);
    const auto waits = nodes_of(timeline::Category::EventWait);
    ASSERT_EQ(records.size(), 2u);
    ASSERT_EQ(waits.size(), 1u);
    const timeline::Node& newest =
        records[0].id > records[1].id ? records[0] : records[1];
    EXPECT_NE(std::find(waits[0].deps.begin(), waits[0].deps.end(), newest.id),
              waits[0].deps.end())
        << "newest-wins: the wait must reference the re-record";
}

TEST_F(TimelineTest, UntrackedHostTimeBecomesFillerNodes) {
    Device dev(tiny_properties());
    const std::size_t n = small_cfg().total_threads();
    auto buf = dev.malloc_n<int>(n);
    dev.advance_host(1e-3);  // untracked host compute (steering CPU model)
    std::vector<int> host(n, 5);
    dev.upload(buf, std::span<const int>(host));

    bool filler = false;
    for (const timeline::Node& node : nodes_of(timeline::Category::Host)) {
        if (node.name == "host" && node.duration() >= 1e-3) filler = true;
    }
    EXPECT_TRUE(filler) << "advance_host must be folded into a filler node";
    const timeline::Report r = timeline::analyze();
    for (const timeline::LaneSummary& lane : r.lanes) {
        if (lane.lane.find(".host") != std::string::npos) {
            EXPECT_EQ(lane.bubble_seconds, 0.0) << "the host lane is gapless";
            EXPECT_TRUE(lane.bubbles.empty());
        }
    }
    expect_tiled(r, timeline::nodes());
}

TEST_F(TimelineTest, IdleDeviceLaneShowsABubble) {
    Device dev(tiny_properties());
    auto buf = dev.malloc_n<int>(small_cfg().total_threads());
    dev.launch(small_cfg(), [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 1); },
               "k1");
    dev.synchronize();
    dev.advance_host(2e-3);  // device sits idle while the host computes
    dev.launch(small_cfg(), [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 2); },
               "k2");
    dev.synchronize();

    const auto kernels = nodes_of(timeline::Category::Kernel);
    ASSERT_EQ(kernels.size(), 2u);
    const timeline::Report r = timeline::analyze();
    bool checked = false;
    for (const timeline::LaneSummary& lane : r.lanes) {
        if (lane.lane.find(".device") == std::string::npos) continue;
        checked = true;
        ASSERT_EQ(lane.bubbles.size(), 1u);
        EXPECT_EQ(lane.bubbles[0].first, kernels[0].end);
        EXPECT_EQ(lane.bubbles[0].second, kernels[1].start);
        EXPECT_GE(lane.bubble_seconds, 2e-3);
    }
    EXPECT_TRUE(checked);
    expect_tiled(r, timeline::nodes());
}

TEST_F(TimelineTest, CriticalPathTilesTheMakespanExactly) {
    Device dev(tiny_properties());
    const std::size_t n = small_cfg().total_threads();
    auto buf = dev.malloc_n<int>(n);
    const StreamId a = dev.stream_create();
    const StreamId b = dev.stream_create();
    std::vector<int> host(n, 1);
    dev.upload(buf, std::span<const int>(host));
    dev.launch_async(small_cfg(),
                     [&](ThreadCtx& ctx) { return burn_kernel(ctx, buf, 1); }, "ka",
                     a);
    dev.launch_async(small_cfg(),
                     [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 2); }, "kb",
                     b);
    dev.memcpy_to_host_async(host.data(), buf.addr(), n * sizeof(int), b);
    dev.synchronize();
    dev.launch(small_cfg(), [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 3); },
               "legacy");
    dev.download(std::span<int>(host), buf);

    const timeline::Report r = timeline::analyze();
    EXPECT_GT(r.makespan_seconds, 0.0);
    EXPECT_GT(r.critical_path.size(), 3u);
    expect_tiled(r, timeline::nodes());
}

TEST_F(TimelineTest, SerializedSumAndOverlapEfficiencyAreExact) {
    Device dev(tiny_properties());
    auto buf = dev.malloc_n<int>(small_cfg().total_threads());
    const StreamId a = dev.stream_create();
    const StreamId b = dev.stream_create();
    dev.launch_async(small_cfg(),
                     [&](ThreadCtx& ctx) { return burn_kernel(ctx, buf, 1); }, "ka",
                     a);
    dev.launch_async(small_cfg(),
                     [&](ThreadCtx& ctx) { return burn_kernel(ctx, buf, 2); }, "kb",
                     b);
    dev.synchronize();

    const timeline::Report r = timeline::analyze();
    double sum = 0.0;
    for (const timeline::Node& node : timeline::nodes()) {
        if (!node.failed) sum += node.duration();
    }
    EXPECT_EQ(r.serialized_seconds, sum);
    EXPECT_EQ(r.overlap_efficiency, r.serialized_seconds / r.makespan_seconds);
    // Two compute-heavy kernels overlapped on two streams: more modelled
    // work happened than wall makespan.
    EXPECT_GT(r.overlap_efficiency, 1.0);
}

TEST_F(TimelineTest, FaultRejectedEnqueueBecomesAFailedNodeWithNoEdges) {
    Device dev(tiny_properties());
    auto buf = dev.malloc_n<int>(small_cfg().total_threads());
    const StreamId s = dev.stream_create();
    dev.launch_async(small_cfg(),
                     [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 1); }, "ok1",
                     s);

    faults::Rule rule;
    rule.site = faults::Site::Launch;
    rule.code = ErrorCode::LaunchFailure;
    rule.every = 1;
    faults::configure({rule});
    EXPECT_THROW(dev.launch_async(
                     small_cfg(),
                     [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 2); },
                     "doomed", s),
                 Error);
    faults::disable();

    dev.launch_async(small_cfg(),
                     [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 3); }, "ok2",
                     s);
    dev.synchronize();

    const std::vector<timeline::Node> ns = timeline::nodes();
    const timeline::Node* failed = nullptr;
    for (const timeline::Node& n : ns) {
        if (n.failed) {
            EXPECT_EQ(failed, nullptr) << "exactly one failed node expected";
            failed = &n;
        }
    }
    ASSERT_NE(failed, nullptr);
    EXPECT_EQ(failed->name, "doomed");
    EXPECT_EQ(failed->cat, timeline::Category::Kernel);
    EXPECT_TRUE(failed->deps.empty()) << "failed nodes contribute no edges";
    EXPECT_EQ(failed->start, failed->end);
    for (const timeline::Node& n : ns) {
        EXPECT_EQ(std::find(n.deps.begin(), n.deps.end(), failed->id), n.deps.end())
            << "nothing may depend on a failed node";
    }

    const timeline::Report r = timeline::analyze();
    EXPECT_EQ(r.failed_nodes, 1u);
    EXPECT_EQ(std::find(r.critical_path.begin(), r.critical_path.end(), failed->id),
              r.critical_path.end());
    expect_tiled(r, ns);
    faults::reset();
}

TEST_F(TimelineTest, NodesShareCorrelationIdsWithProfCallbacks) {
    std::map<std::uint64_t, std::string> api_by_corr;
    const std::uint64_t sub = prof::subscribe([&](const prof::ApiRecord& rec) {
        if (rec.phase == prof::Phase::Enter && rec.correlation != 0) {
            api_by_corr[rec.correlation] = prof::api_name(rec.api);
        }
    });

    Device dev(tiny_properties());
    const std::size_t n = small_cfg().total_threads();
    auto buf = dev.malloc_n<int>(n);
    std::vector<int> host(n, 4);
    dev.upload(buf, std::span<const int>(host));
    dev.launch(small_cfg(), [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 1); },
               "fill");
    dev.synchronize();
    prof::unsubscribe(sub);

    const auto kernels = nodes_of(timeline::Category::Kernel);
    const auto h2d = nodes_of(timeline::Category::MemcpyH2D);
    ASSERT_EQ(kernels.size(), 1u);
    ASSERT_EQ(h2d.size(), 1u);
    ASSERT_NE(kernels[0].correlation, 0u);
    ASSERT_NE(h2d[0].correlation, 0u);
    EXPECT_EQ(api_by_corr[kernels[0].correlation], "launch");
    EXPECT_EQ(api_by_corr[h2d[0].correlation], "memcpy_h2d");
}

TEST_F(TimelineTest, ResetRestartsTheCorrelationCounter) {
    Device dev(tiny_properties());
    const std::size_t n = small_cfg().total_threads();
    auto buf = dev.malloc_n<int>(n);
    std::vector<int> host(n, 6);
    dev.upload(buf, std::span<const int>(host));
    std::vector<timeline::Node> ns = timeline::nodes();
    ASSERT_FALSE(ns.empty());
    const std::uint64_t first_corr = ns.back().correlation;

    timeline::reset();
    timeline::enable();
    // Same runtime call sequence (malloc, then upload) after the reset:
    // the correlation counter must restart and hand out the same ids.
    auto buf2 = dev.malloc_n<int>(n);
    dev.upload(buf2, std::span<const int>(host));
    ns = timeline::nodes();
    ASSERT_FALSE(ns.empty());
    // Same runtime call sequence after reset: same correlation id. This is
    // what makes timeline digests comparable across runs.
    EXPECT_EQ(ns.back().correlation, first_corr);
}

TEST_F(TimelineTest, EmptyTimelineAnalyzesToZeros) {
    const timeline::Report r = timeline::analyze();
    EXPECT_EQ(r.makespan_seconds, 0.0);
    EXPECT_EQ(r.serialized_seconds, 0.0);
    EXPECT_TRUE(r.critical_path.empty());
    EXPECT_TRUE(r.lanes.empty());
    EXPECT_EQ(r.total_nodes, 0u);
    const std::string json = timeline::report_json();
    const auto doc = cupp::minijson::parse(json);  // must still be valid JSON
    ASSERT_NE(doc.find("timeline"), nullptr);
}

TEST_F(TimelineTest, ReportJsonRoundTripsThroughMinijson) {
    Device dev(tiny_properties());
    const std::size_t n = small_cfg().total_threads();
    auto buf = dev.malloc_n<int>(n);
    const StreamId s = dev.stream_create();
    std::vector<int> host(n, 2);
    dev.upload(buf, std::span<const int>(host));
    dev.launch_async(small_cfg(),
                     [&](ThreadCtx& ctx) { return burn_kernel(ctx, buf, 1); },
                     "burn", s);
    dev.stream_synchronize(s);

    const std::vector<timeline::Node> ns = timeline::nodes();
    const timeline::Report r = timeline::analyze();
    const auto doc = cupp::minijson::parse(timeline::report_json());
    const auto* tl = doc.find("timeline");
    ASSERT_NE(tl, nullptr);
    EXPECT_EQ(tl->find("version")->number(), 1.0);
    // %.17g round-trips doubles exactly: the parsed summary must equal the
    // in-memory analysis bit for bit.
    EXPECT_EQ(tl->find("makespan_seconds")->number(), r.makespan_seconds);
    EXPECT_EQ(tl->find("critical_path_seconds")->number(), r.critical_path_seconds);
    EXPECT_EQ(tl->find("serialized_seconds")->number(), r.serialized_seconds);
    const auto* counts = tl->find("counts");
    ASSERT_NE(counts, nullptr);
    EXPECT_EQ(counts->find("nodes")->number(), static_cast<double>(ns.size()));
    EXPECT_EQ(tl->find("nodes")->array().size(), ns.size());
    EXPECT_EQ(tl->find("critical_path")->array().size(), r.critical_path.size());
}

TEST_F(TimelineTest, SyncNodesEdgeBackToTheWorkTheyWaitedOn) {
    Device dev(tiny_properties());
    auto buf = dev.malloc_n<int>(small_cfg().total_threads());
    const StreamId s = dev.stream_create();
    dev.launch_async(small_cfg(),
                     [&](ThreadCtx& ctx) { return burn_kernel(ctx, buf, 1); },
                     "burn", s);
    dev.stream_synchronize(s);

    const std::vector<timeline::Node> ns = timeline::nodes();
    const auto syncs = nodes_of(timeline::Category::Sync);
    const auto kernels = nodes_of(timeline::Category::Kernel);
    ASSERT_EQ(syncs.size(), 1u);
    ASSERT_EQ(kernels.size(), 1u);
    EXPECT_EQ(syncs[0].name, "stream synchronize");
    // The sync released when the kernel (the stream's tail) completed: the
    // edge is explicit and the times agree exactly.
    EXPECT_NE(std::find(syncs[0].deps.begin(), syncs[0].deps.end(), kernels[0].id),
              syncs[0].deps.end());
    EXPECT_EQ(syncs[0].start, kernels[0].end);
    expect_tiled(timeline::analyze(), ns);
}

}  // namespace
