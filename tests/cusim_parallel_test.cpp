// Parallel block-engine determinism tests: the same workload run under
// CUPP_SIM_THREADS=1/2/8 (via BlockPool::set_threads) must produce
// bit-identical LaunchStats, device memory, memcheck reports, trace event
// sequences and fault-injection reports — the contract documented in
// block_pool.hpp and DESIGN.md "Parallel block execution".
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "cupp/trace.hpp"
#include "cusim/block_pool.hpp"
#include "cusim/cusim.hpp"
#include "cusim/faults.hpp"

namespace {

using namespace cusim;

/// Pins the engine thread count for one scope, restoring auto after.
struct ThreadsGuard {
    explicit ThreadsGuard(unsigned n) { BlockPool::set_threads(n); }
    ~ThreadsGuard() { BlockPool::set_threads(0); }
};

// A kernel touching every stat the reducer folds: global traffic, shared
// memory, two barrier rounds, and a per-warp divergent branch. Blocks write
// disjoint slices of `data` (as real CUDA grids do), so running them on
// different host workers is race-free by construction.
KernelTask stress_kernel(ThreadCtx& ctx, DevicePtr<float> data) {
    const unsigned n = static_cast<unsigned>(ctx.block_dim().count());
    auto tile = ctx.shared_array<float>(n);
    const std::uint64_t gid = ctx.global_id();
    const float v = data.read(ctx, gid);
    tile.write(ctx, ctx.linear_tid(), v);
    co_await ctx.syncthreads();
    float acc = tile.read(ctx, (ctx.linear_tid() + 1) % n);
    if (ctx.branch(ctx.linear_tid() % 2 == 0)) {
        acc += 1.5f;
    }
    co_await ctx.syncthreads();
    data.write(ctx, gid, acc + v * 0.5f);
    co_return;
}

struct StressRun {
    LaunchStats stats{};
    std::vector<float> out;
    std::string stats_json;
};

StressRun run_stress(unsigned threads) {
    ThreadsGuard guard(threads);
    Device dev(tiny_properties());
    LaunchConfig cfg{dim3{4, 2, 2}, dim3{16, 2}};  // 16 blocks, 3-D grid
    cfg.shared_bytes = 32 * sizeof(float);
    auto data = dev.malloc_n<float>(cfg.total_threads());
    std::vector<float> init(cfg.total_threads());
    for (std::size_t i = 0; i < init.size(); ++i) {
        init[i] = static_cast<float>(i % 97) * 0.25f;
    }
    dev.upload(data, std::span<const float>(init));
    StressRun r;
    r.stats = dev.launch(
        cfg, [&](ThreadCtx& ctx) { return stress_kernel(ctx, data); }, "stress");
    r.stats_json = describe_json(r.stats, dev.properties().cost);
    r.out.resize(init.size());
    dev.download(std::span<float>(r.out), data);
    return r;
}

TEST(ParallelEngine, LaunchStatsAndMemoryAreBitIdenticalAcrossThreadCounts) {
    const StressRun serial = run_stress(1);
    for (unsigned threads : {2u, 8u}) {
        const StressRun par = run_stress(threads);
        EXPECT_EQ(par.stats_json, serial.stats_json) << threads << " threads";
        // describe_json rounds device_ms; check the raw double bit-for-bit
        // (the reducer folds BlockCost waves in launch order).
        EXPECT_EQ(par.stats.device_seconds, serial.stats.device_seconds);
        EXPECT_EQ(par.stats.compute_cycles, serial.stats.compute_cycles);
        EXPECT_EQ(par.stats.stall_cycles, serial.stats.stall_cycles);
        EXPECT_EQ(par.stats.divergent_events, serial.stats.divergent_events);
        EXPECT_EQ(par.stats.branch_evaluations, serial.stats.branch_evaluations);
        EXPECT_EQ(par.stats.syncthreads_count, serial.stats.syncthreads_count);
        EXPECT_EQ(par.stats.bytes_read, serial.stats.bytes_read);
        EXPECT_EQ(par.stats.bytes_written, serial.stats.bytes_written);
        EXPECT_EQ(par.out, serial.out) << threads << " threads";
    }
}

// Every block past the first three throws; a serial run reports block 3 —
// the lowest faulting linear index — and so must every parallel run, with
// later blocks' exceptions drained silently.
KernelTask faulty_kernel(ThreadCtx& ctx) {
    if (ctx.linear_bid() >= 3 && ctx.linear_tid() == 0) {
        throw std::runtime_error("boom in block " + std::to_string(ctx.linear_bid()));
    }
    co_return;
}

TEST(ParallelEngine, LowestFaultingBlockWinsDeterministically) {
    for (unsigned threads : {1u, 2u, 8u}) {
        ThreadsGuard guard(threads);
        Device dev(tiny_properties());
        LaunchConfig cfg{dim3{8}, dim3{4}};
        try {
            dev.launch(cfg, [](ThreadCtx& ctx) { return faulty_kernel(ctx); });
            FAIL() << "launch should have thrown (" << threads << " threads)";
        } catch (const Error& e) {
            EXPECT_EQ(e.code(), ErrorCode::LaunchFailure);
            EXPECT_NE(std::string(e.what()).find("boom in block 3"), std::string::npos)
                << e.what() << " (" << threads << " threads)";
        }
    }
}

// Even blocks read (uninitialized) allocation A, odd blocks allocation B.
// Serial execution inserts A's dedup record first (block 0 runs first); the
// parallel path must flush deferred violations in block order to match.
KernelTask uninit_kernel(ThreadCtx& ctx, DevicePtr<float> a, DevicePtr<float> b) {
    const float v = ctx.linear_bid() % 2 == 0 ? a.read(ctx, ctx.global_id())
                                              : b.read(ctx, ctx.global_id());
    if (ctx.branch(v > 1e30f)) {
        ctx.charge(Op::FAdd);
    }
    co_return;
}

TEST(ParallelEngine, MemcheckReportsAreIdenticalAcrossThreadCounts) {
    memcheck::enable();
    Device dev(tiny_properties());
    LaunchConfig cfg{dim3{6}, dim3{8}};
    auto a = dev.malloc_n<float>(cfg.total_threads());
    auto b = dev.malloc_n<float>(cfg.total_threads());

    auto run_and_report = [&](unsigned threads) {
        ThreadsGuard guard(threads);
        memcheck::reset();
        dev.launch(cfg, [&](ThreadCtx& ctx) { return uninit_kernel(ctx, a, b); },
                   "uninit");
        return memcheck::report_json();
    };

    const std::string serial = run_and_report(1);
    EXPECT_NE(serial.find("uninitialized_read"), std::string::npos) << serial;
    for (unsigned threads : {2u, 8u}) {
        EXPECT_EQ(run_and_report(threads), serial) << threads << " threads";
    }

    dev.free(a);
    dev.free(b);
    memcheck::disable();
    memcheck::reset();
}

/// (phase, track, name, args) signature of an event — everything except the
/// wall-clock timestamps, with the per-process device ordinal normalised so
/// two runs on different Device instances compare equal.
std::vector<std::string> event_signatures(const std::vector<cupp::trace::Event>& events) {
    std::vector<std::string> sig;
    sig.reserve(events.size());
    for (const auto& e : events) {
        std::string track = e.track;
        if (track.rfind("dev", 0) == 0) {
            std::size_t i = 3;
            while (i < track.size() && std::isdigit(static_cast<unsigned char>(track[i]))) {
                track.erase(i, 1);
            }
            track.insert(3, "#");
        }
        std::string s;
        s += static_cast<char>(e.phase);
        s += '|';
        s += track;
        s += '|';
        s += e.name;
        for (const auto& a : e.args) {
            s += '|';
            s += a.key;
            s += '=';
            s += a.json;
        }
        sig.push_back(std::move(s));
    }
    return sig;
}

TEST(ParallelEngine, TraceEventSequenceMatchesSerialRun) {
    auto run_traced = [&](unsigned threads) {
        ThreadsGuard guard(threads);
        memcheck::enable();
        cupp::trace::enable();
        cupp::trace::clear();
        {
            Device dev(tiny_properties());
            LaunchConfig cfg{dim3{6}, dim3{8}};
            auto a = dev.malloc_n<float>(cfg.total_threads());
            auto b = dev.malloc_n<float>(cfg.total_threads());
            dev.launch(cfg, [&](ThreadCtx& ctx) { return uninit_kernel(ctx, a, b); },
                       "uninit");
            dev.free(a);
            dev.free(b);
        }
        auto sig = event_signatures(cupp::trace::events());
        cupp::trace::disable();
        cupp::trace::clear();
        memcheck::disable();
        memcheck::reset();
        return sig;
    };

    const auto serial = run_traced(1);
    // The launch span plus one memcheck instant per violating access.
    EXPECT_FALSE(serial.empty());
    for (unsigned threads : {2u, 8u}) {
        EXPECT_EQ(run_traced(threads), serial) << threads << " threads";
    }
}

// Fault injection fires at host-side sites (preflight, before any block
// runs), so the nth-call/every-k counters must tick identically no matter
// how many workers execute the grids in between.
TEST(ParallelEngine, FaultInjectionCountersAreThreadCountIndependent) {
    auto run_faulted = [&](unsigned threads) {
        ThreadsGuard guard(threads);
        faults::Rule rule;
        rule.site = faults::Site::Launch;
        rule.code = ErrorCode::LaunchFailure;
        rule.every = 2;
        faults::configure({rule});
        Device dev(tiny_properties());
        LaunchConfig cfg{dim3{4}, dim3{8}};
        std::string failures;
        for (int i = 0; i < 6; ++i) {
            try {
                dev.launch(cfg, [](ThreadCtx& ctx) -> KernelTask {
                    ctx.charge(Op::FAdd);
                    co_return;
                });
            } catch (const Error&) {
                failures += std::to_string(i) + ",";
            }
        }
        const auto injected = faults::injections(faults::Site::Launch);
        faults::disable();
        faults::reset();
        return failures + "#" + std::to_string(injected);
    };

    const std::string serial = run_faulted(1);
    EXPECT_EQ(serial, "1,3,5,#3");
    EXPECT_EQ(run_faulted(4), serial);
}

// Alternating geometries through one pool exercise the per-worker scratch:
// contexts are re-constructed in place, shrunk and regrown, and coroutine
// frames recycle through the thread-local cache.
KernelTask iota_kernel(ThreadCtx& ctx, DevicePtr<std::uint32_t> out) {
    out.write(ctx, ctx.global_id(), static_cast<std::uint32_t>(ctx.global_id()));
    co_return;
}

TEST(ParallelEngine, ScratchReuseSurvivesChangingGeometry) {
    ThreadsGuard guard(2);
    Device dev(tiny_properties());
    const dim3 block_shapes[] = {dim3{8}, dim3{64}, dim3{33}, dim3{64}, dim3{8, 4}};
    for (const dim3& block : block_shapes) {
        LaunchConfig cfg{dim3{5}, block};
        auto out = dev.malloc_n<std::uint32_t>(cfg.total_threads());
        dev.launch(cfg, [&](ThreadCtx& ctx) { return iota_kernel(ctx, out); });
        std::vector<std::uint32_t> host(cfg.total_threads());
        dev.download(std::span<std::uint32_t>(host), out);
        for (std::uint32_t i = 0; i < host.size(); ++i) {
            ASSERT_EQ(host[i], i) << "block " << block.x << "x" << block.y;
        }
        dev.free(out);
    }
}

TEST(BlockPool, RunsEveryIndexExactlyOnce) {
    auto& pool = BlockPool::instance();
    std::vector<std::atomic<int>> hits(100);
    pool.run(hits.size(), 4, [&](std::uint64_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i].load(), 1) << i;
    }
    // Degenerate shapes: empty, single, more threads than work.
    pool.run(0, 4, [&](std::uint64_t) { FAIL(); });
    std::atomic<int> one{0};
    pool.run(1, 8, [&](std::uint64_t) { one.fetch_add(1); });
    EXPECT_EQ(one.load(), 1);
}

TEST(BlockPool, ConfiguredThreadsHonoursOverride) {
    {
        ThreadsGuard guard(5);
        EXPECT_EQ(BlockPool::configured_threads(), 5u);
    }
    EXPECT_GE(BlockPool::configured_threads(), 1u);
}

TEST(DeviceProperties, DescribeJsonSurfacesSimThreads) {
    ThreadsGuard guard(5);
    DeviceProperties p = tiny_properties();
    const std::string auto_json = describe_json(p);
    EXPECT_NE(auto_json.find("\"sim_threads\":0"), std::string::npos) << auto_json;
    EXPECT_NE(auto_json.find("\"sim_threads_resolved\":5"), std::string::npos)
        << auto_json;
    p.sim_threads = 3;
    const std::string pinned = describe_json(p);
    EXPECT_NE(pinned.find("\"sim_threads\":3"), std::string::npos) << pinned;
    EXPECT_NE(pinned.find("\"sim_threads_resolved\":3"), std::string::npos) << pinned;
}

}  // namespace
