// memory1d and shared_device_ptr tests (§4.2).
#include <gtest/gtest.h>

#include <deque>
#include <list>
#include <numeric>
#include <vector>

#include "cupp/cupp.hpp"

namespace {

TEST(Memory1d, AllocFreeLifecycle) {
    cupp::device d;
    const auto used_before = d.sim().memory().used();
    {
        cupp::memory1d<float> m(d, 1024);
        EXPECT_EQ(m.size(), 1024u);
        EXPECT_GT(d.sim().memory().used(), used_before);
    }
    EXPECT_EQ(d.sim().memory().used(), used_before);  // freed on destruction
}

TEST(Memory1d, PointerTransferRoundTrip) {
    cupp::device d;
    std::vector<int> data(100);
    std::iota(data.begin(), data.end(), 0);
    cupp::memory1d<int> m(d, data.data(), data.data() + data.size());
    std::vector<int> back(100);
    m.copy_to_host(back.data());
    EXPECT_EQ(back, data);
}

TEST(Memory1d, IteratorTransferLinearizesTraversalOrder) {
    // "the value of the iterator passed to the function is the first value
    // in the memory block, the value the iterator points to when
    // incrementing is the next value and so on" (§4.2).
    cupp::device d;
    std::list<int> data = {5, 4, 3, 2, 1};
    cupp::memory1d<int> m(d, data.begin(), data.end());
    EXPECT_EQ(m.size(), 5u);
    std::vector<int> back;
    m.copy_to(std::back_inserter(back));
    EXPECT_EQ(back, (std::vector<int>{5, 4, 3, 2, 1}));
}

TEST(Memory1d, DeepCopySemantics) {
    // "When the object is copied, the copy allocates new memory and copies
    // the data from the original memory to the newly allocated one."
    cupp::device d;
    std::vector<double> data = {1.0, 2.0, 3.0};
    cupp::memory1d<double> a(d, data.data(), data.data() + 3);
    cupp::memory1d<double> b(a);
    EXPECT_NE(a.addr(), b.addr());

    // Mutating a leaves b untouched.
    const std::vector<double> changed = {9.0, 9.0, 9.0};
    a.copy_from_host(changed.data());
    std::vector<double> back(3);
    b.copy_to_host(back.data());
    EXPECT_EQ(back, data);
}

TEST(Memory1d, CopyAssignmentIsStronglyExceptionSafeDeepCopy) {
    cupp::device d;
    std::vector<int> xs = {1, 2, 3, 4};
    cupp::memory1d<int> a(d, xs.data(), xs.data() + 4);
    cupp::memory1d<int> b(d, 4);
    b = a;
    std::vector<int> back(4);
    b.copy_to_host(back.data());
    EXPECT_EQ(back, xs);
    b = b;  // self-assignment is a no-op
    b.copy_to_host(back.data());
    EXPECT_EQ(back, xs);
}

TEST(Memory1d, IteratorRangeSizeMismatchThrows) {
    cupp::device d;
    cupp::memory1d<int> m(d, 4);
    std::vector<int> three = {1, 2, 3};
    EXPECT_THROW(m.copy_from(three.begin(), three.end()), cupp::usage_error);
}

TEST(Memory1d, MemberOfClassDeepCopies) {
    // §4.2: "If cupp::memory1d is used as a member of class and an object of
    // this class is copied, the memory on the device is copied too."
    cupp::device d;
    struct Holder {
        cupp::memory1d<int> block;
    };
    std::vector<int> xs = {7, 8};
    Holder h1{cupp::memory1d<int>(d, xs.data(), xs.data() + 2)};
    Holder h2(h1);  // implicit copy ctor deep-copies the member
    EXPECT_NE(h1.block.addr(), h2.block.addr());
    std::vector<int> back(2);
    h2.block.copy_to_host(back.data());
    EXPECT_EQ(back, xs);
}

TEST(SharedDevicePtr, SharedOwnershipFreesOnce) {
    cupp::device d;
    const auto used_before = d.sim().memory().used();
    cupp::shared_device_ptr<float> p(d, 256);
    EXPECT_EQ(p.use_count(), 1);
    {
        cupp::shared_device_ptr<float> q = p;
        EXPECT_EQ(p.use_count(), 2);
        EXPECT_FALSE(p.unique());
        EXPECT_EQ(p.addr(), q.addr());
    }
    EXPECT_TRUE(p.unique());
    EXPECT_GT(d.sim().memory().used(), used_before);
    p.reset();
    EXPECT_EQ(d.sim().memory().used(), used_before);
}

TEST(SharedDevicePtr, UploadDownload) {
    cupp::device d;
    cupp::shared_device_ptr<int> p(d, 8);
    std::vector<int> xs = {1, 2, 3, 4, 5, 6, 7, 8};
    p.upload(xs.data());
    std::vector<int> back(8);
    p.download(back.data());
    EXPECT_EQ(back, xs);
}

TEST(SharedDevicePtr, DefaultConstructedIsEmpty) {
    cupp::shared_device_ptr<int> p;
    EXPECT_FALSE(p);
    EXPECT_EQ(p.use_count(), 0);
    EXPECT_EQ(p.size(), 0u);
}

TEST(Device, HandleQueries) {
    cupp::device d;
    EXPECT_EQ(d.ordinal(), 0);
    EXPECT_EQ(d.multiprocessors(), 12u);
    EXPECT_GT(d.total_memory(), 0u);
    EXPECT_LE(d.free_memory(), d.total_memory());
    EXPECT_FALSE(d.name().empty());
}

TEST(Device, RawAllocationsFreedOnHandleDestruction) {
    // §4.1: "When the device handle is destroyed, all memory allocated on
    // this device is freed as well."
    auto& sim = cusim::Registry::instance().device(0);
    const auto used_before = sim.memory().used();
    {
        cupp::device d;
        (void)d.malloc(4096);
        (void)d.malloc(4096);
        EXPECT_GT(sim.memory().used(), used_before);
    }
    EXPECT_EQ(sim.memory().used(), used_before);
}

TEST(Device, MoveTransfersOwnership) {
    auto& sim = cusim::Registry::instance().device(0);
    const auto used_before = sim.memory().used();
    cupp::device a;
    (void)a.malloc(1024);
    cupp::device b(std::move(a));
    EXPECT_THROW((void)a.sim(), cupp::usage_error);
    EXPECT_GT(sim.memory().used(), used_before);
    cupp::device c = std::move(b);
    (void)c;
}

TEST(Device, ChooseByProperties) {
    cusim::DeviceProperties request;
    request.total_global_mem = 1024;  // any device has this much
    cupp::device d(request);
    EXPECT_GE(d.total_memory(), request.total_global_mem);
}

}  // namespace
