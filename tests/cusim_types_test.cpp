// Tests for the index types, launch-geometry rules and the cost model.
#include <gtest/gtest.h>

#include "cusim/cost_model.hpp"
#include "cusim/launch.hpp"
#include "cusim/types.hpp"

namespace {

using namespace cusim;

TEST(Types, Dim3DefaultsUnspecifiedComponentsToOne) {
    // "dim3 is identical to uint3, except that all components left
    // unspecified when creating have the value 1" (§3.1.3).
    EXPECT_EQ(make_dim3(7), dim3(7, 1, 1));
    EXPECT_EQ(make_dim3(7, 3), dim3(7, 3, 1));
    EXPECT_EQ(dim3{}.count(), 1u);
    EXPECT_EQ(make_dim3(10, 10).count(), 100u);
}

TEST(Types, LaunchConfigAcceptsPaperGeometry) {
    // Listing 4.3: 10x10 blocks of 8x8 threads.
    LaunchConfig cfg{make_dim3(10, 10), make_dim3(8, 8)};
    EXPECT_NO_THROW(cfg.validate());
    EXPECT_EQ(cfg.total_threads(), 6400u);
    EXPECT_EQ(cfg.warps_per_block(), 2u);
}

TEST(Types, LaunchConfigRejectsOversizedBlocks) {
    LaunchConfig cfg{dim3{1}, dim3{kMaxThreadsPerBlock + 1}};
    EXPECT_THROW(cfg.validate(), Error);
    LaunchConfig max_ok{dim3{1}, dim3{kMaxThreadsPerBlock}};
    EXPECT_NO_THROW(max_ok.validate());
}

TEST(Types, LaunchConfigAccepts3DGridsAndRejectsHugeGrids) {
    EXPECT_NO_THROW((LaunchConfig{dim3{2, 2, 2}, dim3{32}}).validate());
    EXPECT_THROW((LaunchConfig{dim3{kMaxGridDim + 1}, dim3{32}}).validate(), Error);
    EXPECT_THROW((LaunchConfig{dim3{1, 1, kMaxGridDim + 1}, dim3{32}}).validate(), Error);
    EXPECT_NO_THROW((LaunchConfig{dim3{kMaxGridDim, kMaxGridDim}, dim3{1}}).validate());
}

TEST(Types, WarpsPerBlockRoundsUp) {
    EXPECT_EQ((LaunchConfig{dim3{1}, dim3{1}}).warps_per_block(), 1u);
    EXPECT_EQ((LaunchConfig{dim3{1}, dim3{32}}).warps_per_block(), 1u);
    EXPECT_EQ((LaunchConfig{dim3{1}, dim3{33}}).warps_per_block(), 2u);
    EXPECT_EQ((LaunchConfig{dim3{1}, dim3{512}}).warps_per_block(), 16u);
}

// Table 2.2 is the contract of the cost model.
TEST(CostModel, ImplementsTable2_2) {
    const CostModel cm;
    EXPECT_EQ(cm.issue_cycles(Op::FAdd), 4u);
    EXPECT_EQ(cm.issue_cycles(Op::FMul), 4u);
    EXPECT_EQ(cm.issue_cycles(Op::FMad), 4u);
    EXPECT_EQ(cm.issue_cycles(Op::IAdd), 4u);
    EXPECT_EQ(cm.issue_cycles(Op::Bitwise), 4u);
    EXPECT_EQ(cm.issue_cycles(Op::Compare), 4u);
    EXPECT_EQ(cm.issue_cycles(Op::MinMax), 4u);
    EXPECT_EQ(cm.issue_cycles(Op::Recip), 16u);
    EXPECT_EQ(cm.issue_cycles(Op::RSqrt), 16u);
    EXPECT_EQ(cm.issue_cycles(Op::Register), 0u);
    EXPECT_GE(cm.issue_cycles(Op::SharedAccess), 4u);
    EXPECT_EQ(cm.issue_cycles(Op::SyncThreads), 4u);
    // Reading device memory: 400-600 cycles of latency.
    EXPECT_GE(cm.stall_cycles(Op::GlobalRead), 400u);
    EXPECT_LE(cm.stall_cycles(Op::GlobalRead), 600u);
    // Local-memory spills live in device memory (Table 2.1); their latency
    // is mostly exposed (dependent use), so it is carried as issue cycles.
    EXPECT_GE(cm.issue_cycles(Op::LocalSpill), 400u);
    EXPECT_LE(cm.issue_cycles(Op::LocalSpill), 600u);
    // Writes are fire-and-forget: no stall.
    EXPECT_EQ(cm.stall_cycles(Op::GlobalWrite), 0u);
}

TEST(CostModel, G80MachineConstants) {
    const CostModel cm;
    EXPECT_EQ(cm.multiprocessors, 12u);  // 8800 GTS: 96 processors (§5.3)
    EXPECT_EQ(cm.multiprocessors * kProcessorsPerMP, 96u);
    EXPECT_DOUBLE_EQ(cm.core_clock_hz, 1.2e9);
    EXPECT_GT(cm.bytes_per_cycle_per_mp(), 0.0);
}

}  // namespace
