// cupp::serve tests: admission control (global bound + per-tenant
// quotas), deadline expiry (queued, mid-retry, and mid-handler) with the
// device left healthy, the per-device circuit breaker (trip, half-open
// probe, recovery, re-trip), shutdown draining, deterministic run() mode,
// and the boids-as-a-service digest-vs-oracle contract under injected
// faults.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "cupp/cupp.hpp"
#include "cusim/cusim.hpp"
#include "serve/boids_service.hpp"
#include "serve/serve.hpp"

namespace {

namespace serve = cupp::serve;
namespace faults = cusim::faults;
namespace tr = cupp::trace;
using cusim::ErrorCode;

class ServeTest : public ::testing::Test {
protected:
    void SetUp() override {
        faults::reset();
        tr::metrics().reset();
        tr::clear();
    }
    void TearDown() override {
        faults::reset();
        tr::disable();
        tr::clear();
        tr::metrics().reset();
    }
};

/// A handler that models `service_s` of device work and echoes the payload.
serve::handler_fn sync_handler(double service_s) {
    return [service_s](serve::worker_context& ctx, const serve::request& r) {
        ctx.sim().advance_host(service_s);
        ctx.check_deadline();
        return r.payload;
    };
}

serve::request req(std::string tenant, double arrival_s = 0.0,
                   std::uint64_t payload = 0) {
    serve::request r;
    r.tenant = std::move(tenant);
    r.arrival_s = arrival_s;
    r.payload = payload;
    return r;
}

cusim::KernelTask add_kernel(cusim::ThreadCtx& ctx, const int& a, const int& b,
                             int& out) {
    if (ctx.global_id() == 0) out = a + b;
    co_return;
}
using AddK = cusim::KernelTask (*)(cusim::ThreadCtx&, const int&, const int&, int&);

// --- admission control ------------------------------------------------------

TEST_F(ServeTest, QuotasShedExactlyTheOverload) {
    serve::config cfg;
    cfg.workers = 1;
    cfg.queue_capacity = 2;
    cfg.default_quota = {/*max_queued=*/1, /*max_in_flight=*/1};
    serve::server srv(cfg, sync_handler(10e-3));

    // Five simultaneous arrivals against one worker: tenant a dispatches
    // one and queues one; a's third exceeds its queue quota; b fills the
    // global queue; c finds it full.
    std::vector<serve::request> reqs{req("a"), req("a"), req("a"), req("b"),
                                     req("c")};
    const auto out = srv.run(std::move(reqs));

    ASSERT_EQ(out.size(), 5u);
    EXPECT_EQ(out[0].result, serve::outcome::completed);
    EXPECT_EQ(out[1].result, serve::outcome::completed);
    EXPECT_EQ(out[2].result, serve::outcome::admission_rejected);
    EXPECT_EQ(out[2].detail, "tenant queue quota exceeded");
    EXPECT_EQ(out[3].result, serve::outcome::completed);
    EXPECT_EQ(out[4].result, serve::outcome::admission_rejected);
    EXPECT_EQ(out[4].detail, "global queue full");
    EXPECT_EQ(out[2].worker, -1) << "shed requests never touch a device";

    const auto s = srv.stats();
    EXPECT_EQ(s.submitted, 5u);
    EXPECT_EQ(s.admitted, 3u);
    EXPECT_EQ(s.completed, 3u);
    EXPECT_EQ(s.rejected_tenant_queued, 1u);
    EXPECT_EQ(s.rejected_queue_full, 1u);
    EXPECT_EQ(s.rejected(), 2u);
    EXPECT_EQ(tr::metrics().counter("cupp.serve.rejected.queue_full"), 1u);
}

TEST_F(ServeTest, InFlightQuotaSerialisesATenantAcrossFreeWorkers) {
    serve::config cfg;
    cfg.workers = 2;
    cfg.tenant_quotas["a"] = {/*max_queued=*/4, /*max_in_flight=*/1};
    serve::server srv(cfg, sync_handler(10e-3));

    const auto out = srv.run({req("a"), req("a"), req("b")});

    ASSERT_EQ(out.size(), 3u);
    for (const auto& r : out) EXPECT_EQ(r.result, serve::outcome::completed);
    EXPECT_EQ(out[0].worker, 0);
    EXPECT_EQ(out[2].worker, 1) << "b takes the second worker immediately";
    // a's second request had to wait for a's first despite the free worker.
    EXPECT_EQ(out[1].worker, 0);
    EXPECT_DOUBLE_EQ(out[0].latency_s, 10e-3);
    EXPECT_DOUBLE_EQ(out[2].latency_s, 10e-3);
    EXPECT_DOUBLE_EQ(out[1].latency_s, 20e-3) << "queue wait + service";
}

TEST_F(ServeTest, ZeroInFlightQuotaIsRejectedNotDeadlocked) {
    serve::config cfg;
    cfg.workers = 1;
    cfg.tenant_quotas["mute"] = {/*max_queued=*/4, /*max_in_flight=*/0};
    serve::server srv(cfg, sync_handler(1e-3));

    const auto out = srv.run({req("mute")});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].result, serve::outcome::admission_rejected);
    EXPECT_EQ(out[0].detail, "tenant in-flight quota is zero");
    EXPECT_EQ(srv.stats().rejected_tenant_in_flight, 1u);
}

// --- deadlines --------------------------------------------------------------

TEST_F(ServeTest, DeadlineExpiresInQueueWithoutDispatch) {
    serve::config cfg;
    cfg.workers = 1;
    serve::server srv(cfg, sync_handler(10e-3));

    auto late = req("b");
    late.deadline_s = 5e-3;  // expires while the 10 ms request runs
    const auto out = srv.run({req("a"), late});

    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].result, serve::outcome::completed);
    EXPECT_EQ(out[1].result, serve::outcome::deadline_exceeded);
    EXPECT_EQ(out[1].worker, -1) << "expired in queue, never dispatched";
    EXPECT_DOUBLE_EQ(out[1].latency_s, 5e-3);
    EXPECT_EQ(srv.stats().deadline_expired_queued, 1u);
    EXPECT_EQ(srv.stats().deadline_expired, 0u);
}

TEST_F(ServeTest, DeadlineCapsRetryBackoffMidFlight) {
    serve::config cfg;
    cfg.workers = 1;
    cfg.retry.initial_backoff_s = 2e-3;
    cfg.retry.backoff_multiplier = 2.0;
    serve::server srv(cfg, [](serve::worker_context& ctx, const serve::request&) {
        // A framework-level retry loop that can never succeed: the
        // request's remaining budget (5 ms) is threaded into the scoped
        // policy, so with_retry sleeps 2 ms, then refuses the 4 ms backoff
        // and raises deadline_exceeded_error instead of overrunning.
        return cupp::with_retry(
            cupp::default_retry_policy(), &ctx.sim(), "flaky op",
            [&]() -> std::uint64_t {
                throw cupp::kernel_error("injected", ErrorCode::LaunchFailure);
            });
    });

    auto r = req("t");
    r.deadline_s = 5e-3;
    const auto out = srv.run({r});

    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].result, serve::outcome::deadline_exceeded);
    EXPECT_EQ(out[0].attempts, 1);
    EXPECT_LE(out[0].service_s, 5e-3) << "backoff never overruns the budget";
    EXPECT_GE(tr::metrics().counter("cupp.retry.deadline_capped"), 1u);
    EXPECT_EQ(srv.stats().deadline_expired, 1u);
    EXPECT_TRUE(srv.devices_healthy());
}

TEST_F(ServeTest, HandlerDeadlinePollExpiresLongRequests) {
    serve::config cfg;
    cfg.workers = 1;
    cfg.default_deadline_s = 3e-3;  // config-level default, no per-request one
    serve::server srv(cfg, [](serve::worker_context& ctx, const serve::request&) {
        for (int step = 0; step < 100; ++step) {
            ctx.check_deadline();
            ctx.sim().advance_host(1e-3);
        }
        return std::uint64_t{1};
    });

    const auto out = srv.run({req("t")});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].result, serve::outcome::deadline_exceeded);
    // The poll fires on the first check after the budget is spent.
    EXPECT_LE(out[0].service_s, 5e-3);
    EXPECT_TRUE(srv.devices_healthy());
}

// --- transient re-execution and the circuit breaker -------------------------

TEST_F(ServeTest, TransientEscapesReExecuteUntilSuccess) {
    auto calls = std::make_shared<int>(0);
    serve::config cfg;
    cfg.workers = 1;
    cfg.retry.initial_backoff_s = 1e-3;
    serve::server srv(cfg, [calls](serve::worker_context&, const serve::request&) {
        if (++*calls <= 2) {
            throw cupp::memory_error("exhausted retries", ErrorCode::TransferFailure);
        }
        return std::uint64_t{99};
    });

    const auto out = srv.run({req("t")});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].result, serve::outcome::completed);
    EXPECT_EQ(out[0].value, 99u);
    EXPECT_EQ(out[0].attempts, 3);
    EXPECT_EQ(srv.stats().transient_escapes, 2u);
    EXPECT_EQ(srv.stats().sticky_failures, 0u);
}

TEST_F(ServeTest, AttemptBudgetExhaustionBecomesDeadlineExceeded) {
    serve::config cfg;
    cfg.workers = 1;
    cfg.max_attempts = 3;
    cfg.retry.initial_backoff_s = 1e-6;
    serve::server srv(cfg, [](serve::worker_context&, const serve::request&) -> std::uint64_t {
        throw cupp::memory_error("always failing", ErrorCode::TransferFailure);
    });

    const auto out = srv.run({req("t")});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].result, serve::outcome::deadline_exceeded);
    EXPECT_EQ(out[0].attempts, 3);
    EXPECT_NE(out[0].detail.find("attempt budget"), std::string::npos);
}

TEST_F(ServeTest, BreakerTripsResetsAndRecoversThroughAProbe) {
    // Two injected DeviceLost faults at the launch site: the first two
    // attempts each lose the device (reset before the next attempt), the
    // second one trips the K=2 breaker, and the third attempt — a
    // half-open probe — succeeds and closes it again.
    faults::Rule rule;
    rule.site = faults::Site::Launch;
    rule.code = ErrorCode::DeviceLost;
    rule.every = 1;
    rule.max_injections = 2;
    faults::configure({rule});

    serve::config cfg;
    cfg.workers = 1;
    cfg.breaker_threshold = 2;
    cfg.retry.initial_backoff_s = 1e-6;
    serve::server srv(cfg, [](serve::worker_context& ctx, const serve::request&) {
        cupp::device d(ctx.ordinal());
        int out = 0;
        cupp::kernel k(static_cast<AddK>(add_kernel), cusim::dim3{1}, cusim::dim3{32});
        k(d, 20, 22, out);
        return static_cast<std::uint64_t>(out);
    });

    const auto out = srv.run({req("t")});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].result, serve::outcome::completed);
    EXPECT_EQ(out[0].value, 42u);
    EXPECT_EQ(out[0].attempts, 3);

    const auto s = srv.stats();
    EXPECT_EQ(s.sticky_failures, 2u);
    EXPECT_EQ(s.breaker_trips, 1u);
    EXPECT_EQ(s.breaker_probes, 1u);
    EXPECT_EQ(s.breaker_recoveries, 1u);
    EXPECT_EQ(s.device_resets, 2u);
    EXPECT_TRUE(srv.devices_healthy());
    EXPECT_EQ(tr::metrics().counter("cupp.serve.breaker.trips"), 1u);
}

TEST_F(ServeTest, FailedProbeReopensTheBreaker) {
    auto failures = std::make_shared<int>(3);
    serve::config cfg;
    cfg.workers = 1;
    cfg.breaker_threshold = 1;  // trip on the first sticky failure
    cfg.retry.initial_backoff_s = 1e-6;
    serve::server srv(cfg, [failures](serve::worker_context&, const serve::request&) {
        if (--*failures >= 0) {
            throw cupp::device_lost_error("synthetic", ErrorCode::DeviceLost);
        }
        return std::uint64_t{7};
    });

    const auto out = srv.run({req("t")});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].result, serve::outcome::completed);
    EXPECT_EQ(out[0].attempts, 4);

    const auto s = srv.stats();
    // Failure 1 trips (threshold 1); failures 2 and 3 are failed probes,
    // each re-opening; attempt 4 is the probe that finally closes it.
    EXPECT_EQ(s.sticky_failures, 3u);
    EXPECT_EQ(s.breaker_trips, 3u);
    EXPECT_EQ(s.breaker_probes, 3u);
    EXPECT_EQ(s.breaker_recoveries, 1u);
}

// --- concurrent mode --------------------------------------------------------

TEST_F(ServeTest, ConcurrentSubmitCompletesAndStopDrains) {
    serve::config cfg;
    cfg.workers = 2;
    cfg.queue_capacity = 64;
    cfg.default_quota = {/*max_queued=*/16, /*max_in_flight=*/2};
    serve::server srv(cfg, sync_handler(1e-3));

    srv.start();
    EXPECT_TRUE(srv.running());
    std::vector<std::future<serve::response>> futures;
    for (int i = 0; i < 16; ++i) {
        futures.push_back(srv.submit(req(i % 2 ? "a" : "b", 0.0,
                                         static_cast<std::uint64_t>(i))));
    }
    srv.stop();  // must drain every admitted request before joining
    EXPECT_FALSE(srv.running());

    std::uint64_t completed = 0;
    for (auto& f : futures) {
        const auto r = f.get();
        ASSERT_TRUE(r.result == serve::outcome::completed ||
                    r.result == serve::outcome::admission_rejected)
            << "outcome: " << serve::outcome_name(r.result);
        if (r.result == serve::outcome::completed) ++completed;
    }
    const auto s = srv.stats();
    EXPECT_EQ(s.completed, completed);
    EXPECT_EQ(s.submitted, 16u);
    EXPECT_EQ(s.completed + s.rejected(), 16u);
    EXPECT_TRUE(srv.devices_healthy());

    EXPECT_THROW((void)srv.submit(req("late")), cupp::usage_error)
        << "submit after stop is a usage error";
}

// --- deterministic run() mode and the boids service -------------------------

TEST_F(ServeTest, RunModeIsBitIdenticalAcrossServers) {
    auto make_requests = [] {
        std::vector<serve::request> reqs;
        for (int i = 0; i < 12; ++i) {
            auto r = req(i % 3 == 0 ? "a" : (i % 3 == 1 ? "b" : "c"),
                         /*arrival_s=*/i * 1e-3, static_cast<std::uint64_t>(i));
            if (i % 4 == 3) r.deadline_s = 2e-3;
            reqs.push_back(std::move(r));
        }
        return reqs;
    };
    serve::config cfg;
    cfg.workers = 2;

    serve::server first(cfg, sync_handler(3e-3));
    const auto a = first.run(make_requests());
    serve::server second(cfg, sync_handler(3e-3));
    const auto b = second.run(make_requests());

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].result, b[i].result) << i;
        EXPECT_EQ(a[i].value, b[i].value) << i;
        EXPECT_EQ(a[i].worker, b[i].worker) << i;
        EXPECT_EQ(a[i].attempts, b[i].attempts) << i;
        // service_s is a delta of the devices' absolute modelled clock,
        // which keeps growing across servers sharing the registry — the
        // low bits of the subtraction differ with the clock's magnitude.
        // Within one process run (the bench artifact case) times are
        // bit-identical; across servers they agree to rounding error.
        EXPECT_NEAR(a[i].latency_s, b[i].latency_s, 1e-9) << i;
        EXPECT_NEAR(a[i].service_s, b[i].service_s, 1e-9) << i;
    }
}

TEST_F(ServeTest, BoidsServiceDigestsMatchTheSerialOracleUnderFaults) {
    // Transient injection at two transfer sites: the handler's plugin run
    // retries through them, and every completed digest must still equal
    // the fault-free serial CPU oracle — the zero-corruption contract.
    faults::Rule h2d;
    h2d.site = faults::Site::MemcpyH2D;
    h2d.code = ErrorCode::TransferFailure;
    h2d.every = 9;
    faults::Rule launch;
    launch.site = faults::Site::Launch;
    launch.code = ErrorCode::LaunchFailure;
    launch.every = 7;
    faults::configure({h2d, launch}, /*seed=*/11);

    serve::config cfg;
    cfg.workers = 2;
    cfg.retry.initial_backoff_s = 1e-6;
    serve::server srv(cfg, serve::make_boids_handler());

    std::vector<serve::request> reqs;
    for (int i = 0; i < 6; ++i) {
        reqs.push_back(req(i % 2 ? "a" : "b", i * 1e-3, static_cast<std::uint64_t>(i)));
    }
    const auto out = srv.run(std::move(reqs));
    faults::disable();

    ASSERT_EQ(out.size(), 6u);
    for (std::size_t i = 0; i < out.size(); ++i) {
        ASSERT_EQ(out[i].result, serve::outcome::completed) << out[i].detail;
        const auto expected =
            serve::boids_oracle_digest(serve::boids_catalog_entry(i));
        EXPECT_EQ(out[i].value, expected) << "digest mismatch for payload " << i;
    }
    EXPECT_TRUE(srv.devices_healthy());
}

}  // namespace
