// Property/fuzz test of the lazy-copying state machine: a random sequence
// of host operations and kernel calls against a plain std::vector oracle.
// Whatever the interleaving of reads, writes, resizes, copies and device
// round-trips, the cupp::vector must always observe the oracle's content.
#include <gtest/gtest.h>

#include <vector>

#include "cupp/cupp.hpp"
#include "cusim/cusim.hpp"
#include "steer/lcg.hpp"

namespace {

using cusim::KernelTask;
using cusim::ThreadCtx;

KernelTask add_one(ThreadCtx& ctx, cupp::deviceT::vector<int>& v) {
    const std::uint64_t gid = ctx.global_id();
    if (gid < v.size()) v.write(ctx, gid, v.read(ctx, gid) + 1);
    co_return;
}
using AddK = KernelTask (*)(ThreadCtx&, cupp::deviceT::vector<int>&);

KernelTask sum_into(ThreadCtx& ctx, const cupp::deviceT::vector<int>& v,
                    cupp::deviceT::vector<long>& out) {
    if (ctx.global_id() == 0) {
        long sum = 0;
        for (std::uint64_t i = 0; i < v.size(); ++i) sum += v.read(ctx, i);
        out.write(ctx, 0, sum);
    }
    co_return;
}
using SumK =
    KernelTask (*)(ThreadCtx&, const cupp::deviceT::vector<int>&, cupp::deviceT::vector<long>&);

class VectorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VectorFuzz, MatchesOracleUnderRandomOperations) {
    steer::Lcg rng(GetParam());
    cupp::device d;
    cupp::kernel add_k(static_cast<AddK>(add_one), cusim::dim3{8}, cusim::dim3{64});
    cupp::kernel sum_k(static_cast<SumK>(sum_into), cusim::dim3{1}, cusim::dim3{32});

    cupp::vector<int> v;
    std::vector<int> oracle;
    cupp::vector<long> out = {0};

    for (int step = 0; step < 300; ++step) {
        switch (rng.next_u32() % 8) {
            case 0: {  // push_back
                const int x = static_cast<int>(rng.next_u32() % 1000);
                v.push_back(x);
                oracle.push_back(x);
                break;
            }
            case 1: {  // pop_back
                if (!oracle.empty()) {
                    v.pop_back();
                    oracle.pop_back();
                }
                break;
            }
            case 2: {  // proxy write
                if (!oracle.empty()) {
                    const auto i = rng.next_u32() % oracle.size();
                    const int x = static_cast<int>(rng.next_u32() % 1000);
                    v[i] = x;
                    oracle[i] = x;
                }
                break;
            }
            case 3: {  // proxy read
                if (!oracle.empty()) {
                    const auto i = rng.next_u32() % oracle.size();
                    ASSERT_EQ(static_cast<int>(v[i]), oracle[i]) << "step " << step;
                }
                break;
            }
            case 4: {  // mutating kernel (only when the grid covers the data)
                if (!oracle.empty() && oracle.size() <= 512) {
                    add_k(d, v);
                    for (auto& x : oracle) ++x;
                }
                break;
            }
            case 5: {  // read-only kernel
                if (oracle.size() <= 512) {
                    sum_k(d, v, out);
                    long expect = 0;
                    for (const int x : oracle) expect += x;
                    ASSERT_EQ(static_cast<long>(out[0]), expect) << "step " << step;
                }
                break;
            }
            case 6: {  // resize
                const auto n = rng.next_u32() % 64;
                v.resize(n);
                oracle.resize(n);
                break;
            }
            case 7: {  // copy and swap in
                cupp::vector<int> copy(v);
                v = copy;
                break;
            }
        }
        ASSERT_EQ(v.size(), oracle.size()) << "step " << step;
    }

    // Full final comparison.
    const auto snap = v.snapshot();
    EXPECT_EQ(snap, oracle);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorFuzz,
                         ::testing::Values(1ull, 7ull, 42ull, 2009ull, 31337ull));

// The same state machine under a seeded transient fault plan: allocations,
// transfers and launches fail at random. The retry layer absorbs most of
// it; the rare operation that exhausts its retries throws *atomically*, so
// skipping the oracle update on a throw must keep both sides identical —
// and the run must stay memcheck-clean throughout.
class FaultyVectorFuzz : public ::testing::TestWithParam<std::uint64_t> {
protected:
    void SetUp() override {
        cusim::memcheck::enable();
        cusim::memcheck::set_strict(false);
        cusim::memcheck::reset();
        auto rule = [](cusim::faults::Site site, cusim::ErrorCode code, double p) {
            cusim::faults::Rule r;
            r.site = site;
            r.code = code;
            r.probability = p;
            return r;
        };
        cusim::faults::configure(
            {rule(cusim::faults::Site::Malloc, cusim::ErrorCode::MemoryAllocation, 0.02),
             rule(cusim::faults::Site::MemcpyH2D, cusim::ErrorCode::TransferFailure, 0.05),
             rule(cusim::faults::Site::MemcpyD2H, cusim::ErrorCode::TransferFailure, 0.05),
             rule(cusim::faults::Site::Launch, cusim::ErrorCode::LaunchFailure, 0.05)},
            GetParam());
    }
    void TearDown() override {
        cusim::faults::reset();
        cusim::memcheck::disable();
        cusim::memcheck::reset();
    }
};

TEST_P(FaultyVectorFuzz, OracleAndValidityFlagsSurviveInjectedFaults) {
    steer::Lcg rng(GetParam() * 977 + 1);
    cupp::device d;
    cupp::kernel add_k(static_cast<AddK>(add_one), cusim::dim3{8}, cusim::dim3{64});
    cupp::kernel sum_k(static_cast<SumK>(sum_into), cusim::dim3{1}, cusim::dim3{32});

    cupp::vector<int> v;
    std::vector<int> oracle;
    cupp::vector<long> out = {0};
    int exhausted = 0;

    for (int step = 0; step < 300; ++step) {
        // Injected failures reject an operation before it moves a byte, so
        // a throw means "nothing happened": skip the oracle update.
        try {
            switch (rng.next_u32() % 8) {
                case 0: {  // push_back (host-only: never faults)
                    const int x = static_cast<int>(rng.next_u32() % 1000);
                    v.push_back(x);
                    oracle.push_back(x);
                    break;
                }
                case 1: {  // pop_back
                    if (!oracle.empty()) {
                        v.pop_back();
                        oracle.pop_back();
                    }
                    break;
                }
                case 2: {  // proxy write (may download first)
                    if (!oracle.empty()) {
                        const auto i = rng.next_u32() % oracle.size();
                        const int x = static_cast<int>(rng.next_u32() % 1000);
                        v[i] = x;
                        oracle[i] = x;
                    }
                    break;
                }
                case 3: {  // proxy read
                    if (!oracle.empty()) {
                        const auto i = rng.next_u32() % oracle.size();
                        ASSERT_EQ(static_cast<int>(v[i]), oracle[i]) << "step " << step;
                    }
                    break;
                }
                case 4: {  // mutating kernel
                    if (!oracle.empty() && oracle.size() <= 512) {
                        add_k(d, v);
                        for (auto& x : oracle) ++x;
                    }
                    break;
                }
                case 5: {  // read-only kernel
                    if (oracle.size() <= 512) {
                        sum_k(d, v, out);
                        long expect = 0;
                        for (const int x : oracle) expect += x;
                        ASSERT_EQ(static_cast<long>(out[0]), expect) << "step " << step;
                    }
                    break;
                }
                case 6: {  // resize
                    const auto n = rng.next_u32() % 64;
                    v.resize(n);
                    oracle.resize(n);
                    break;
                }
                case 7: {  // copy and swap in
                    cupp::vector<int> copy(v);
                    v = copy;
                    break;
                }
            }
        } catch (const cupp::exception& e) {
            ASSERT_TRUE(e.transient()) << "step " << step << ": " << e.what();
            ++exhausted;
        }
        ASSERT_EQ(v.size(), oracle.size()) << "step " << step;
        // The lazy-copy invariant must hold even right after a failure:
        // at least one side still owns the truth.
        ASSERT_TRUE(v.host_data_valid() || v.device_data_valid()) << "step " << step;
    }

    EXPECT_GT(cusim::faults::injections(), 0u) << "the plan never fired";
    // Retries absorb nearly everything at these probabilities; full
    // exhaustion (4 consecutive hits) should stay a rare event.
    EXPECT_LE(exhausted, 20);

    cusim::faults::disable();
    EXPECT_EQ(v.snapshot(), oracle);
    EXPECT_TRUE(cusim::memcheck::violations().empty())
        << "fault handling must not leak or corrupt device memory";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultyVectorFuzz,
                         ::testing::Values(11ull, 23ull, 4242ull));

// The lazy state machine with asynchronous streams in the mix: prefetches,
// stream-bound kernel calls and host proxy accesses interleave against the
// same fault plan. A transient failure can now strike mid-async-copy — at
// the enqueue, at the covering synchronize, or at the joining legacy op —
// and every path must stay atomic: a throw means the oracle update is
// skipped and the host-side truth (whichever side owns it) survives.
class AsyncVectorFuzz : public ::testing::TestWithParam<std::uint64_t> {
protected:
    void SetUp() override {
        cusim::memcheck::enable();
        cusim::memcheck::set_strict(false);
        cusim::memcheck::reset();
        auto rule = [](cusim::faults::Site site, cusim::ErrorCode code, double p) {
            cusim::faults::Rule r;
            r.site = site;
            r.code = code;
            r.probability = p;
            return r;
        };
        cusim::faults::configure(
            {rule(cusim::faults::Site::Malloc, cusim::ErrorCode::MemoryAllocation, 0.02),
             rule(cusim::faults::Site::MemcpyH2D, cusim::ErrorCode::TransferFailure, 0.05),
             rule(cusim::faults::Site::MemcpyD2H, cusim::ErrorCode::TransferFailure, 0.05),
             rule(cusim::faults::Site::Launch, cusim::ErrorCode::LaunchFailure, 0.05),
             rule(cusim::faults::Site::Sync, cusim::ErrorCode::TransferFailure, 0.03)},
            GetParam());
    }
    void TearDown() override {
        cusim::faults::reset();
        cusim::memcheck::disable();
        cusim::memcheck::reset();
    }
};

TEST_P(AsyncVectorFuzz, HostTruthSurvivesFaultsMidAsyncCopy) {
    steer::Lcg rng(GetParam() * 31 + 5);
    cupp::device d;
    cupp::stream s(d);
    cupp::kernel add_k(static_cast<AddK>(add_one), cusim::dim3{8}, cusim::dim3{64});

    cupp::vector<int> v;
    std::vector<int> oracle;
    int exhausted = 0;

    for (int step = 0; step < 250; ++step) {
        try {
            switch (rng.next_u32() % 8) {
                case 0: {  // push_back (syncs a pending download first)
                    const int x = static_cast<int>(rng.next_u32() % 1000);
                    v.push_back(x);
                    oracle.push_back(x);
                    break;
                }
                case 1: {  // proxy write against a possibly in-flight copy
                    if (!oracle.empty()) {
                        const auto i = rng.next_u32() % oracle.size();
                        const int x = static_cast<int>(rng.next_u32() % 1000);
                        v[i] = x;
                        oracle[i] = x;
                    }
                    break;
                }
                case 2: {  // proxy read against a possibly in-flight copy
                    if (!oracle.empty()) {
                        const auto i = rng.next_u32() % oracle.size();
                        ASSERT_EQ(static_cast<int>(v[i]), oracle[i]) << "step " << step;
                    }
                    break;
                }
                case 3: {  // async upload
                    if (!oracle.empty()) v.prefetch_to_device(d, s);
                    break;
                }
                case 4: {  // async download (leaves the host stale until sync)
                    if (!oracle.empty()) v.prefetch_to_host(s);
                    break;
                }
                case 5: {  // stream-bound kernel call
                    if (!oracle.empty() && oracle.size() <= 512) {
                        add_k(d, s, v);
                        for (auto& x : oracle) ++x;
                    }
                    break;
                }
                case 6: {  // explicit synchronize (faultable Sync site)
                    s.synchronize();
                    break;
                }
                case 7: {  // resize over whatever is in flight
                    const auto n = rng.next_u32() % 64;
                    v.resize(n);
                    oracle.resize(n);
                    break;
                }
            }
        } catch (const cupp::exception& e) {
            ASSERT_TRUE(e.transient()) << "step " << step << ": " << e.what();
            ++exhausted;
        }
        ASSERT_EQ(v.size(), oracle.size()) << "step " << step;
        // The invariant of §4.6 extended to streams: one side owns the
        // truth, or a queued download is on its way to restoring it.
        ASSERT_TRUE(v.host_data_valid() || v.device_data_valid() ||
                    v.prefetch_pending())
            << "step " << step;
    }

    EXPECT_GT(cusim::faults::injections(), 0u) << "the plan never fired";
    EXPECT_LE(exhausted, 25);

    cusim::faults::disable();
    EXPECT_EQ(v.snapshot(), oracle);
    EXPECT_TRUE(cusim::memcheck::violations().empty())
        << "async fault handling must not leak or corrupt device memory";
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsyncVectorFuzz,
                         ::testing::Values(5ull, 77ull, 8181ull));

// Capture/replay under the fault plan: random batches of kernel calls are
// recorded into a cupp::graph and replayed against the lazy vector, while
// transient launch failures strike the captured launches, the instantiate
// validation pass and the replays themselves. A failed capture-time launch
// is simply absent from the graph; a failed instantiate or replay must be
// *atomic* — nothing half-enqueued, the oracle untouched — and the retry
// loop around it must converge. The std::vector oracle advances only by
// what provably executed, so the final snapshot comparison proves replayed
// graphs neither lose nor duplicate work under injected faults.
class CaptureReplayFuzz : public ::testing::TestWithParam<std::uint64_t> {
protected:
    void SetUp() override {
        cusim::memcheck::enable();
        cusim::memcheck::set_strict(false);
        cusim::memcheck::reset();
        cusim::faults::Rule r;
        r.site = cusim::faults::Site::Launch;
        r.code = cusim::ErrorCode::LaunchFailure;
        // No filter: strikes kernel launches, "graph instantiate" and
        // "graph launch" preflights alike.
        r.probability = 0.08;
        cusim::faults::configure({r}, GetParam());
    }
    void TearDown() override {
        cusim::faults::reset();
        cusim::memcheck::disable();
        cusim::memcheck::reset();
    }
};

TEST_P(CaptureReplayFuzz, ReplayedGraphsNeverLoseOrDuplicateWorkUnderFaults) {
    steer::Lcg rng(GetParam() * 131 + 7);
    cupp::device d;
    cupp::stream s(d);
    cupp::kernel add_k(static_cast<AddK>(add_one), cusim::dim3{8}, cusim::dim3{64});

    const std::uint32_t n = 64 + rng.next_u32() % 128;
    cupp::vector<int> v;
    std::vector<int> oracle;
    for (std::uint32_t i = 0; i < n; ++i) {
        const int x = static_cast<int>(rng.next_u32() % 1000);
        v.push_back(x);
        oracle.push_back(x);
    }

    // Warm-up outside any capture: uploads the data and caches the device
    // handle, so capture-time calls enqueue pure launches (a blocking
    // handle upload inside a capture would be an implicit sync and
    // invalidate it). Bounded retry over full retry-exhaustion.
    for (int attempt = 0;; ++attempt) {
        try {
            v.prefetch_to_device(d, s);
            add_k(d, s, v);
            s.synchronize();
            for (auto& x : oracle) ++x;
            break;
        } catch (const cupp::exception& e) {
            ASSERT_TRUE(e.transient());
            ASSERT_LT(attempt, 50) << "warm-up never succeeded";
        }
    }

    for (int round = 0; round < 4; ++round) {
        const unsigned k = 1 + rng.next_u32() % 6;
        unsigned k_eff = 0;  // launches that made it into the graph
        cupp::graph g = cupp::graph::capture(s, [&] {
            for (unsigned i = 0; i < k; ++i) {
                try {
                    add_k(d, s, v);
                    ++k_eff;
                } catch (const cupp::exception& e) {
                    ASSERT_TRUE(e.transient());  // absent from the graph, that's all
                }
            }
        });
        ASSERT_EQ(g.node_count(), k_eff) << "round " << round;

        cupp::graph_exec exec;
        for (int attempt = 0;; ++attempt) {
            try {
                exec = g.instantiate();
                break;
            } catch (const cupp::exception& e) {
                ASSERT_TRUE(e.transient()) << "round " << round;
                // Atomic: a failed instantiate enqueued nothing.
                ASSERT_EQ(d.sim().pending_async_ops(), 0u);
                ASSERT_LT(attempt, 50) << "instantiate never succeeded";
            }
        }

        const unsigned replays = 1 + rng.next_u32() % 2;
        for (unsigned rep = 0; rep < replays; ++rep) {
            for (int attempt = 0;; ++attempt) {
                try {
                    exec.launch();
                    break;
                } catch (const cupp::exception& e) {
                    ASSERT_TRUE(e.transient()) << "round " << round;
                    // Atomic: the aborted replay contributed zero ops, so
                    // the oracle (not advanced yet) still matches.
                    ASSERT_EQ(d.sim().pending_async_ops(), 0u);
                    ASSERT_LT(attempt, 50) << "replay never succeeded";
                }
            }
            s.synchronize();
            for (auto& x : oracle) x += static_cast<int>(k_eff);
        }
    }

    EXPECT_GT(cusim::faults::injections(), 0u) << "the plan never fired";
    cusim::faults::disable();
    EXPECT_EQ(v.snapshot(), oracle);
    EXPECT_TRUE(cusim::memcheck::violations().empty())
        << "captured/replayed fault handling must not leak or corrupt memory";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CaptureReplayFuzz,
                         ::testing::Values(13ull, 303ull, 9090ull));

class AllocatorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorFuzz, NeverCorruptsLiveAllocations) {
    steer::Lcg rng(GetParam());
    cusim::GlobalMemory mem(1 << 20);

    struct Live {
        cusim::DeviceAddr addr;
        std::uint32_t size;
        std::uint8_t fill;
    };
    std::vector<Live> live;

    for (int step = 0; step < 2000; ++step) {
        const bool do_alloc = live.empty() || (rng.next_u32() % 2 == 0);
        if (do_alloc) {
            const std::uint32_t size = 1 + rng.next_u32() % 4096;
            cusim::DeviceAddr addr;
            try {
                addr = mem.allocate(size);
            } catch (const cusim::Error&) {
                continue;  // exhausted: fine, frees will follow
            }
            const auto fill = static_cast<std::uint8_t>(rng.next_u32());
            std::vector<std::uint8_t> data(size, fill);
            mem.write(addr, data.data(), size);
            live.push_back({addr, size, fill});
        } else {
            const auto i = rng.next_u32() % live.size();
            // Verify content survived all the churn, then free.
            std::vector<std::uint8_t> data(live[i].size);
            mem.read(live[i].addr, data.data(), live[i].size);
            for (const auto b : data) ASSERT_EQ(b, live[i].fill) << "step " << step;
            mem.free(live[i].addr);
            live[i] = live.back();
            live.pop_back();
        }
    }
    for (const auto& l : live) mem.free(l.addr);
    EXPECT_EQ(mem.used(), 0u);
    EXPECT_EQ(mem.allocation_count(), 0u);
    // After everything is freed the space must have coalesced back.
    const auto big = mem.allocate((1 << 20) - 256);
    mem.free(big);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorFuzz, ::testing::Values(3ull, 99ull, 12345ull));

}  // namespace
