// Timeline-accounting invariants of the GPU plugin: the reported stage
// times must tile the simulated host clock exactly, double buffering must
// genuinely overlap, and the update/draw split must match the §6.3.2
// geometry.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "cupp/trace.hpp"
#include "gpusteer/plugin.hpp"
#include "steer/steer.hpp"

namespace {

using gpusteer::GpuBoidsPlugin;
using gpusteer::Version;
using steer::StageTimes;
using steer::WorldSpec;

TEST(Timeline, StageTimesTileTheHostClock) {
    WorldSpec spec;
    spec.agents = 512;
    for (const bool db : {false, true}) {
        GpuBoidsPlugin gpu(Version::V5_FullUpdateOnDevice, db);
        gpu.open(spec);
        auto& sim = gpu.device_handle().sim();
        for (int i = 0; i < 5; ++i) {
            const double before = sim.host_time();
            const StageTimes t = gpu.step();
            const double elapsed = sim.host_time() - before;
            EXPECT_NEAR(t.total(), elapsed, 1e-12)
                << (db ? "double-buffered" : "plain") << " step " << i;
        }
        gpu.close();
    }
}

TEST(Timeline, HostVersionsTileTheHostClockToo) {
    WorldSpec spec;
    spec.agents = 256;
    for (const Version v : {Version::V1_NeighborSearchGlobal, Version::V3_SimSubstageCached}) {
        GpuBoidsPlugin gpu(v);
        gpu.open(spec);
        auto& sim = gpu.device_handle().sim();
        const double before = sim.host_time();
        const StageTimes t = gpu.step();
        EXPECT_NEAR(t.total(), sim.host_time() - before, 1e-12);
        gpu.close();
    }
}

TEST(Timeline, DoubleBufferingOverlapsDeviceWorkWithTheDrawStage) {
    // At a size where draw and update are comparable, the double-buffered
    // frame must be shorter than update + draw but no shorter than
    // max(update, draw).
    WorldSpec spec;
    spec.agents = 4096;

    GpuBoidsPlugin plain(Version::V5_FullUpdateOnDevice, false);
    plain.open(spec);
    plain.step();
    const StageTimes t_plain = plain.step();
    plain.close();

    GpuBoidsPlugin db(Version::V5_FullUpdateOnDevice, true);
    db.open(spec);
    db.step();
    db.step();
    const StageTimes t_db = db.step();
    db.close();

    const double serial = t_plain.total();
    const double lower_bound = std::max(t_plain.update(), t_plain.draw);
    EXPECT_LT(t_db.total(), serial);
    EXPECT_GE(t_db.total(), lower_bound * 0.95);
}

TEST(Timeline, KernelActiveWhileHostDraws) {
    // In double-buffered steady state the device must still be busy when
    // the host finishes issuing the frame's work — that *is* the overlap.
    WorldSpec spec;
    spec.agents = 8192;  // device work ~ draw work: the §6.3.2 sweet spot
    GpuBoidsPlugin db(Version::V5_FullUpdateOnDevice, true);
    db.open(spec);
    db.step();
    db.step();
    auto& sim = db.device_handle().sim();
    // Immediately after a steady-state step the device should still be
    // crunching the just-launched update while the host has already drawn.
    EXPECT_TRUE(sim.kernel_active());
    db.close();
}

TEST(Timeline, TraceShowsKernelSpansOverlappingHostSpans) {
    // The trace must make the §2.2 asynchrony visible: with double
    // buffering, device-lane kernel spans overlap host-lane spans (the
    // host draws frame n while the device computes frame n+1).
    namespace tr = cupp::trace;
    tr::clear();
    tr::enable();

    WorldSpec spec;
    spec.agents = 8192;
    GpuBoidsPlugin db(Version::V5_FullUpdateOnDevice, true);
    db.open(spec);
    db.step();
    db.step();
    db.step();
    auto& sim = db.device_handle().sim();
    const std::string host_lane = sim.host_track();
    const std::string device_lane = sim.device_track();
    db.close();

    const auto events = tr::events();
    tr::disable();
    tr::clear();

    bool host_seen = false, device_seen = false, overlap = false;
    for (const auto& dev_ev : events) {
        if (dev_ev.phase != tr::Phase::Complete || dev_ev.track != device_lane) continue;
        device_seen = true;
        for (const auto& host_ev : events) {
            if (host_ev.phase != tr::Phase::Complete || host_ev.track != host_lane) continue;
            host_seen = true;
            const double start = std::max(dev_ev.ts_us, host_ev.ts_us);
            const double end = std::min(dev_ev.ts_us + dev_ev.dur_us,
                                        host_ev.ts_us + host_ev.dur_us);
            if (end > start) {
                overlap = true;
                break;
            }
        }
        if (overlap) break;
    }
    EXPECT_TRUE(device_seen) << "no kernel spans on the device lane";
    EXPECT_TRUE(host_seen) << "no spans on the host lane";
    EXPECT_TRUE(overlap) << "device work never overlapped host work in the trace";
}

TEST(Timeline, ResetClockZeroesTheTimeline) {
    WorldSpec spec;
    spec.agents = 256;
    GpuBoidsPlugin gpu(Version::V5_FullUpdateOnDevice);
    gpu.open(spec);
    gpu.step();
    auto& sim = gpu.device_handle().sim();
    EXPECT_GT(sim.host_time(), 0.0);
    sim.reset_clock();
    EXPECT_DOUBLE_EQ(sim.host_time(), 0.0);
    EXPECT_DOUBLE_EQ(sim.device_free_at(), 0.0);
    gpu.close();
}

}  // namespace
