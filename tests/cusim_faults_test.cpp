// cusim::faults + cupp resilience tests: deterministic injection triggers
// (nth / every / probability / filter), atomicity of injected failures,
// transparent transient retries with bounded backoff, sticky DeviceLost
// semantics with device::reset() recovery, exception-safety of the lazy
// containers, error-code preservation through cupp::rethrow, and the
// injection report / trace / metrics surface.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <thread>
#include <span>
#include <string>
#include <vector>

#include "cupp/cupp.hpp"
#include "cupp/detail/minijson.hpp"
#include "cusim/cusim.hpp"

namespace {

namespace tr = cupp::trace;
namespace faults = cusim::faults;
using cusim::Device;
using cusim::dim3;
using cusim::ErrorCode;
using cusim::KernelTask;
using cusim::LaunchConfig;
using cusim::ThreadCtx;

/// Every test starts with injection fully disarmed and clean metrics, and
/// leaves no sticky global state behind — so this binary behaves the same
/// whether or not CUPP_FAULTS is exported around it.
class FaultsTest : public ::testing::Test {
protected:
    void SetUp() override {
        faults::reset();
        tr::metrics().reset();
        tr::clear();
    }
    void TearDown() override {
        faults::reset();
        tr::disable();
        tr::clear();
        tr::metrics().reset();
    }
};

faults::Rule make_rule(faults::Site site, ErrorCode code) {
    faults::Rule r;
    r.site = site;
    r.code = code;
    return r;
}

KernelTask copy_first_kernel(ThreadCtx& ctx, cusim::DevicePtr<std::uint32_t> in,
                             cusim::DevicePtr<std::uint32_t> out) {
    if (ctx.global_id() == 0) out.write(ctx, 0, in.read(ctx, 0));
    co_return;
}

void tiny_launch(Device& dev, cusim::DevicePtr<std::uint32_t> in,
                 cusim::DevicePtr<std::uint32_t> out, const char* name) {
    dev.launch(LaunchConfig{dim3{1}, dim3{1}},
               [&](ThreadCtx& ctx) { return copy_first_kernel(ctx, in, out); }, name);
}

// --- enablement and the disabled fast path ---------------------------------

TEST_F(FaultsTest, DisabledByDefaultCountsAndInjectsNothing) {
    EXPECT_FALSE(faults::armed());
    EXPECT_FALSE(faults::enabled());

    Device dev(cusim::tiny_properties());
    auto ptr = dev.malloc_n<std::uint32_t>(4);
    const std::vector<std::uint32_t> data{1, 2, 3, 4};
    dev.upload(ptr, std::span<const std::uint32_t>(data));
    std::vector<std::uint32_t> back(4, 0);
    dev.download(std::span<std::uint32_t>(back), ptr);
    dev.synchronize();

    EXPECT_EQ(back, data);
    EXPECT_EQ(faults::injections(), 0u);
    // Not merely "no injection": disabled sites never reach the evaluator.
    EXPECT_EQ(faults::site_calls(faults::Site::Malloc), 0u);
    EXPECT_EQ(faults::site_calls(faults::Site::MemcpyH2D), 0u);
}

// --- triggers --------------------------------------------------------------

TEST_F(FaultsTest, NthTriggerFiresOnExactlyThatCall) {
    auto r = make_rule(faults::Site::Malloc, ErrorCode::MemoryAllocation);
    r.nth = 2;
    faults::configure({r});

    Device dev(cusim::tiny_properties());
    EXPECT_NO_THROW((void)dev.malloc_n<std::uint32_t>(4));  // call #1
    try {
        (void)dev.malloc_n<std::uint32_t>(4);  // call #2: injected
        FAIL() << "expected an injected MemoryAllocation";
    } catch (const cusim::Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::MemoryAllocation);
        EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("call #2"), std::string::npos);
    }
    EXPECT_NO_THROW((void)dev.malloc_n<std::uint32_t>(4));  // call #3
    EXPECT_EQ(faults::injections(), 1u);
    EXPECT_EQ(faults::site_calls(faults::Site::Malloc), 3u);
}

TEST_F(FaultsTest, EveryTriggerFiresPeriodically) {
    auto r = make_rule(faults::Site::MemcpyH2D, ErrorCode::TransferFailure);
    r.every = 2;
    faults::configure({r});

    Device dev(cusim::tiny_properties());
    auto ptr = dev.malloc_n<std::uint32_t>(4);
    const std::vector<std::uint32_t> data{1, 2, 3, 4};
    int thrown = 0;
    for (int i = 0; i < 4; ++i) {
        try {
            dev.upload(ptr, std::span<const std::uint32_t>(data));
        } catch (const cusim::Error& e) {
            EXPECT_EQ(e.code(), ErrorCode::TransferFailure);
            ++thrown;
        }
    }
    EXPECT_EQ(thrown, 2);  // calls #2 and #4
    EXPECT_EQ(faults::injections(faults::Site::MemcpyH2D), 2u);
}

TEST_F(FaultsTest, ProbabilityTriggerIsSeedDeterministic) {
    auto run_pattern = [](std::uint64_t seed) {
        auto r = make_rule(faults::Site::Malloc, ErrorCode::MemoryAllocation);
        r.probability = 0.5;
        faults::configure({r}, seed);
        Device dev(cusim::tiny_properties());
        std::vector<bool> pattern;
        for (int i = 0; i < 64; ++i) {
            bool injected = false;
            try {
                dev.free_bytes(dev.malloc_bytes(64));
            } catch (const cusim::Error&) {
                injected = true;
            }
            pattern.push_back(injected);
        }
        faults::reset();
        return pattern;
    };

    const auto a = run_pattern(42);
    const auto b = run_pattern(42);
    const auto c = run_pattern(7);
    EXPECT_EQ(a, b) << "same seed must reproduce the same injections";
    EXPECT_NE(a, c) << "different seeds must explore different patterns";
    // p=0.5 over 64 calls: both outcomes must actually occur.
    EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
    EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST_F(FaultsTest, FilterRestrictsInjectionToMatchingLabels) {
    auto r = make_rule(faults::Site::Launch, ErrorCode::LaunchFailure);
    r.every = 1;
    r.filter = "mod";
    faults::configure({r});

    Device dev(cusim::tiny_properties());
    auto in = dev.malloc_n<std::uint32_t>(1);
    auto out = dev.malloc_n<std::uint32_t>(1);
    const std::vector<std::uint32_t> one{1};
    dev.upload(in, std::span<const std::uint32_t>(one));
    dev.upload(out, std::span<const std::uint32_t>(one));

    EXPECT_NO_THROW(tiny_launch(dev, in, out, "sim_kernel"));
    try {
        tiny_launch(dev, in, out, "mod_kernel");
        FAIL() << "expected the filtered launch to fail";
    } catch (const cusim::Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::LaunchFailure);
        EXPECT_NE(std::string(e.what()).find("mod_kernel"), std::string::npos);
    }
    EXPECT_EQ(faults::injections(), 1u);
    EXPECT_EQ(faults::site_calls(faults::Site::Launch), 2u);
}

TEST_F(FaultsTest, MaxInjectionsCapsARule) {
    auto r = make_rule(faults::Site::Sync, ErrorCode::NotReady);
    r.every = 1;
    r.max_injections = 2;
    faults::configure({r});

    Device dev(cusim::tiny_properties());
    EXPECT_THROW(dev.synchronize(), cusim::Error);
    EXPECT_THROW(dev.synchronize(), cusim::Error);
    EXPECT_NO_THROW(dev.synchronize());  // cap exhausted
    EXPECT_NO_THROW(dev.synchronize());
    EXPECT_EQ(faults::injections(), 2u);
    ASSERT_EQ(faults::rules().size(), 1u);
    EXPECT_EQ(faults::rules()[0].injected, 2u);
}

// --- atomicity of injected failures ----------------------------------------

TEST_F(FaultsTest, FailedTransferLeavesBothBuffersUntouched) {
    Device dev(cusim::tiny_properties());
    auto ptr = dev.malloc_n<std::uint32_t>(4);
    const std::vector<std::uint32_t> original{1, 2, 3, 4};
    dev.upload(ptr, std::span<const std::uint32_t>(original));

    auto up = make_rule(faults::Site::MemcpyH2D, ErrorCode::TransferFailure);
    up.nth = 1;
    auto down = make_rule(faults::Site::MemcpyD2H, ErrorCode::TransferFailure);
    down.nth = 1;
    faults::configure({up, down});

    const std::vector<std::uint32_t> replacement{9, 9, 9, 9};
    EXPECT_THROW(dev.upload(ptr, std::span<const std::uint32_t>(replacement)),
                 cusim::Error);

    std::vector<std::uint32_t> host(4, 77);
    EXPECT_THROW(dev.download(std::span<std::uint32_t>(host), ptr), cusim::Error);
    EXPECT_EQ(host, std::vector<std::uint32_t>(4, 77))
        << "a failed download must not scribble on the host buffer";

    faults::disable();
    dev.download(std::span<std::uint32_t>(host), ptr);
    EXPECT_EQ(host, original) << "a failed upload must not have moved any byte";
}

// --- transparent retries at the cupp layer ---------------------------------

KernelTask add_kernel(ThreadCtx& ctx, const int& a, const int& b, int& out) {
    if (ctx.global_id() == 0) out = a + b;
    co_return;
}
using AddK = KernelTask (*)(ThreadCtx&, const int&, const int&, int&);

TEST_F(FaultsTest, TransientLaunchFailureIsRetriedTransparently) {
    auto r = make_rule(faults::Site::Launch, ErrorCode::LaunchFailure);
    r.nth = 1;
    faults::configure({r});

    cupp::device d;
    int out = 0;
    cupp::kernel k(static_cast<AddK>(add_kernel), dim3{1}, dim3{32});
    k(d, 19, 23, out);  // first launch injected, retried, succeeds

    EXPECT_EQ(out, 42);
    EXPECT_EQ(faults::injections(faults::Site::Launch), 1u);
    EXPECT_EQ(faults::site_calls(faults::Site::Launch), 2u) << "one retry";
    EXPECT_GE(tr::metrics().counter("cupp.retry.attempts"), 1u);
    EXPECT_GE(tr::metrics().counter("cupp.retry.recovered"), 1u);
    EXPECT_EQ(tr::metrics().counter("cupp.retry.exhausted"), 0u);
}

TEST_F(FaultsTest, RetryExhaustionRethrowsWithBackoffSchedule) {
    auto r = make_rule(faults::Site::Launch, ErrorCode::LaunchFailure);
    r.every = 1;  // never recovers
    faults::configure({r});

    std::vector<double> backoffs;
    cupp::retry_policy policy;
    policy.max_attempts = 3;
    policy.initial_backoff_s = 1e-3;
    policy.backoff_multiplier = 2.0;
    policy.sleep = [&](double s) { backoffs.push_back(s); };

    cupp::device d;
    int out = 0;
    cupp::kernel k(static_cast<AddK>(add_kernel), dim3{1}, dim3{32});
    k.set_retry_policy(policy);
    try {
        k(d, 1, 2, out);
        FAIL() << "expected retry exhaustion";
    } catch (const cupp::kernel_error& e) {
        EXPECT_EQ(e.code(), ErrorCode::LaunchFailure);
        EXPECT_TRUE(e.transient());
    }
    // 3 attempts, backoff between them: 1 ms then 2 ms.
    ASSERT_EQ(backoffs.size(), 2u);
    EXPECT_DOUBLE_EQ(backoffs[0], 1e-3);
    EXPECT_DOUBLE_EQ(backoffs[1], 2e-3);
    EXPECT_EQ(faults::site_calls(faults::Site::Launch), 3u);
    EXPECT_GE(tr::metrics().counter("cupp.retry.exhausted"), 1u);
}

TEST_F(FaultsTest, MallocRetriesCoverTheContainers) {
    auto r = make_rule(faults::Site::Malloc, ErrorCode::MemoryAllocation);
    r.nth = 1;
    faults::configure({r});

    cupp::device d;
    cupp::memory1d<int> m(d, 8);  // first malloc injected, retried
    const std::vector<int> data{1, 2, 3, 4, 5, 6, 7, 8};
    m.copy_from_host(data.data());
    std::vector<int> back(8, 0);
    m.copy_to_host(back.data());

    EXPECT_EQ(back, data);
    EXPECT_EQ(faults::injections(faults::Site::Malloc), 1u);
    EXPECT_GE(faults::site_calls(faults::Site::Malloc), 2u);
}

// --- exception safety of the lazy containers -------------------------------

TEST_F(FaultsTest, VectorKeepsHostTruthWhenUploadsExhaustRetries) {
    cupp::device d;
    cupp::vector<int> v = {1, 2, 3, 4};

    auto r = make_rule(faults::Site::MemcpyH2D, ErrorCode::TransferFailure);
    r.every = 1;
    faults::configure({r});
    try {
        (void)v.transform(d);  // upload can never succeed
        FAIL() << "expected exhausted retries";
    } catch (const cupp::memory_error& e) {
        EXPECT_EQ(e.code(), ErrorCode::TransferFailure);
    }
    EXPECT_TRUE(v.host_data_valid());
    EXPECT_FALSE(v.device_data_valid());
    EXPECT_EQ(static_cast<int>(v[0]), 1) << "host contents must be intact";

    faults::reset();
    (void)v.transform(d);  // recovers with no further intervention
    EXPECT_TRUE(v.device_data_valid());
    EXPECT_EQ(v.snapshot(), (std::vector<int>{1, 2, 3, 4}));
}

TEST_F(FaultsTest, Memory1dDownloadFailureLeavesDestinationUntouched) {
    cupp::device d;
    const std::vector<int> data{4, 5, 6};
    cupp::memory1d<int> m(d, data.data(), data.data() + data.size());

    auto r = make_rule(faults::Site::MemcpyD2H, ErrorCode::TransferFailure);
    r.every = 1;
    faults::configure({r});
    std::vector<int> dst(3, -1);
    EXPECT_THROW(m.copy_to_host(dst.data()), cupp::memory_error);
    EXPECT_EQ(dst, std::vector<int>(3, -1));

    faults::reset();
    m.copy_to_host(dst.data());
    EXPECT_EQ(dst, data);
}

// --- sticky DeviceLost and reset recovery ----------------------------------

TEST_F(FaultsTest, DeviceLostIsStickyUntilReset) {
    auto r = make_rule(faults::Site::Launch, ErrorCode::DeviceLost);
    r.nth = 1;
    faults::configure({r});

    Device dev(cusim::tiny_properties());
    auto in = dev.malloc_n<std::uint32_t>(1);
    auto out = dev.malloc_n<std::uint32_t>(1);
    const std::vector<std::uint32_t> one{1};
    dev.upload(in, std::span<const std::uint32_t>(one));
    dev.upload(out, std::span<const std::uint32_t>(one));

    try {
        tiny_launch(dev, in, out, "doomed");
        FAIL() << "expected DeviceLost";
    } catch (const cusim::Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::DeviceLost);
    }
    EXPECT_TRUE(dev.lost());

    // Every subsequent operation is rejected — even after the plan is gone,
    // because a poisoned device outlives its fault plan.
    faults::disable();
    try {
        (void)dev.malloc_n<std::uint32_t>(1);
        FAIL() << "expected the poisoned device to reject the malloc";
    } catch (const cusim::Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::DeviceLost);
        EXPECT_NE(std::string(e.what()).find("poisoned"), std::string::npos);
    }

    dev.reset_device();
    EXPECT_FALSE(dev.lost());
    EXPECT_NO_THROW((void)dev.malloc_n<std::uint32_t>(1));
    EXPECT_NO_THROW(tiny_launch(dev, in, out, "revived"));
}

TEST_F(FaultsTest, ResetWipesContentsButKeepsAllocationsLive) {
    Device dev(cusim::tiny_properties());
    auto ptr = dev.malloc_n<std::uint32_t>(4);
    const std::vector<std::uint32_t> data{7, 7, 7, 7};
    dev.upload(ptr, std::span<const std::uint32_t>(data));

    dev.poison();
    EXPECT_TRUE(dev.lost());
    std::vector<std::uint32_t> back(4, 1);
    EXPECT_THROW(dev.download(std::span<std::uint32_t>(back), ptr), cusim::Error);

    dev.reset_device();
    // The address is still a live allocation (no realloc churn for
    // recovering containers) — but its contents did not survive the reset.
    dev.download(std::span<std::uint32_t>(back), ptr);
    EXPECT_EQ(back, std::vector<std::uint32_t>(4, 0));
}

TEST_F(FaultsTest, ResetMarksSurvivingAllocationsUndefinedForMemcheck) {
    cusim::memcheck::enable();
    cusim::memcheck::set_strict(false);
    cusim::memcheck::reset();

    Device dev(cusim::tiny_properties());
    auto in = dev.malloc_n<std::uint32_t>(1);
    auto out = dev.malloc_n<std::uint32_t>(1);
    const std::vector<std::uint32_t> one{1};
    dev.upload(in, std::span<const std::uint32_t>(one));
    dev.upload(out, std::span<const std::uint32_t>(one));

    tiny_launch(dev, in, out, "defined_read");
    EXPECT_EQ(cusim::memcheck::violation_count(cusim::memcheck::Kind::UninitializedRead),
              0u);

    dev.poison();
    dev.reset_device();
    tiny_launch(dev, in, out, "post_reset_read");
    EXPECT_GE(cusim::memcheck::violation_count(cusim::memcheck::Kind::UninitializedRead),
              1u)
        << "post-reset contents are zeroed but must count as never-written";

    cusim::memcheck::disable();
    cusim::memcheck::reset();
}

TEST_F(FaultsTest, CuppDeviceRecoversAfterReset) {
    auto r = make_rule(faults::Site::Launch, ErrorCode::DeviceLost);
    r.nth = 1;
    faults::configure({r});

    cupp::device d;
    cupp::vector<int> v = {1, 2, 3};
    int out = 0;
    cupp::kernel k(static_cast<AddK>(add_kernel), dim3{1}, dim3{32});
    EXPECT_THROW(k(d, 1, 2, out), cupp::device_lost_error);
    EXPECT_TRUE(d.lost());
    EXPECT_THROW((void)v.transform(d), cupp::device_lost_error);

    faults::disable();
    d.reset();
    EXPECT_FALSE(d.lost());
    v.abandon_device_data();  // device copy died with the device
    EXPECT_TRUE(v.host_data_valid());
    k(d, 20, 22, out);
    EXPECT_EQ(out, 42);
    EXPECT_EQ(v.snapshot(), (std::vector<int>{1, 2, 3}));
}

// --- error taxonomy --------------------------------------------------------

TEST_F(FaultsTest, RethrowPreservesEveryErrorCode) {
    struct Case {
        ErrorCode code;
        bool transient;
    };
    const Case cases[] = {
        {ErrorCode::MemoryAllocation, true},  {ErrorCode::TransferFailure, true},
        {ErrorCode::LaunchFailure, true},     {ErrorCode::NotReady, true},
        {ErrorCode::DeviceLost, false},       {ErrorCode::MemcheckViolation, false},
        {ErrorCode::InvalidValue, false},     {ErrorCode::InvalidConfiguration, false},
        {ErrorCode::InvalidDevicePointer, false},
    };
    for (const Case& c : cases) {
        try {
            cupp::rethrow(c.code, "probe");
            FAIL() << "rethrow must always throw";
        } catch (const cupp::exception& e) {
            EXPECT_EQ(e.code(), c.code) << cusim::error_string(c.code);
            EXPECT_EQ(e.transient(), c.transient) << cusim::error_string(c.code);
        }
    }
    // The distinct catchable types survive too.
    EXPECT_THROW(cupp::rethrow(ErrorCode::NotReady, "x"), cupp::not_ready_error);
    EXPECT_THROW(cupp::rethrow(ErrorCode::MemcheckViolation, "x"), cupp::memcheck_error);
    EXPECT_THROW(cupp::rethrow(ErrorCode::DeviceLost, "x"), cupp::device_lost_error);
    EXPECT_THROW(cupp::rethrow(ErrorCode::TransferFailure, "x"), cupp::memory_error);
    EXPECT_THROW(cupp::rethrow(ErrorCode::LaunchFailure, "x"), cupp::kernel_error);
    EXPECT_THROW(cupp::rethrow(ErrorCode::InvalidValue, "x"), cupp::usage_error);
}

// --- observability: metrics, trace, report ---------------------------------

TEST_F(FaultsTest, InjectionsFeedMetricsAndTheFaultsTrack) {
    tr::enable();
    auto r = make_rule(faults::Site::Malloc, ErrorCode::MemoryAllocation);
    r.nth = 1;
    faults::configure({r});

    Device dev(cusim::tiny_properties());
    EXPECT_THROW((void)dev.malloc_bytes(64), cusim::Error);

    EXPECT_EQ(tr::metrics().counter("cusim.faults.injections"), 1u);
    EXPECT_EQ(tr::metrics().counter("cusim.faults.malloc"), 1u);
    bool saw_instant = false;
    for (const auto& ev : tr::events()) {
        if (ev.track == "faults" && ev.name == "fault.malloc" &&
            ev.phase == tr::Phase::Instant) {
            saw_instant = true;
        }
    }
    EXPECT_TRUE(saw_instant) << "every injection is an instant on the faults track";
}

TEST_F(FaultsTest, ReportJsonRoundTripsThroughMinijson) {
    auto r1 = make_rule(faults::Site::Malloc, ErrorCode::MemoryAllocation);
    r1.nth = 1;
    auto r2 = make_rule(faults::Site::Sync, ErrorCode::NotReady);
    r2.every = 1;
    r2.max_injections = 1;
    faults::configure({r1, r2}, /*seed=*/7);

    Device dev(cusim::tiny_properties());
    EXPECT_THROW((void)dev.malloc_bytes(64), cusim::Error);
    EXPECT_THROW(dev.synchronize(), cusim::Error);
    EXPECT_NO_THROW(dev.synchronize());

    EXPECT_EQ(faults::plan_source(), "api");
    const auto root = cupp::minijson::parse(faults::report_json());
    const auto* f = root.find("faults");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->find("total_injections")->number(), 2.0);
    EXPECT_EQ(f->find("seed")->number(), 7.0);
    const auto* rules = f->find("rules");
    ASSERT_NE(rules, nullptr);
    ASSERT_EQ(rules->array().size(), 2u);
    EXPECT_EQ(rules->array()[0].find("site")->str(), "malloc");
    EXPECT_EQ(rules->array()[0].find("injected")->number(), 1.0);
    EXPECT_EQ(rules->array()[1].find("code")->str(), "not_ready");
    EXPECT_EQ(rules->array()[1].find("max")->number(), 1.0);
    // "max": 0 spells "uncapped" in the report.
    EXPECT_EQ(rules->array()[0].find("max")->number(), 0.0);

    const std::string path = testing::TempDir() + "cusim_faults_report_test.json";
    ASSERT_TRUE(faults::write_report(path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(cupp::minijson::serialize(cupp::minijson::parse(text)),
              cupp::minijson::serialize(root));
}

// --- plan files ------------------------------------------------------------

std::string write_temp_plan(const char* name, const std::string& body) {
    const std::string path = testing::TempDir() + name;
    std::ofstream out(path, std::ios::trunc);
    out << body;
    return path;
}

TEST_F(FaultsTest, PlanFileConfiguresRulesAndSeed) {
    const std::string path = write_temp_plan("cusim_faults_plan_ok.json", R"({
        "seed": 99,
        "rules": [
            {"site": "launch", "code": "device_lost", "nth": 6, "max": 1},
            {"site": "memcpy_h2d", "code": "transfer_failure", "every": 7,
             "filter": "vector"}
        ]
    })");
    faults::enable_from_plan(path);

    EXPECT_TRUE(faults::armed());
    EXPECT_TRUE(faults::enabled());
    EXPECT_EQ(faults::plan_source(), path);
    const auto rules = faults::rules();
    ASSERT_EQ(rules.size(), 2u);
    EXPECT_EQ(rules[0].site, faults::Site::Launch);
    EXPECT_EQ(rules[0].code, ErrorCode::DeviceLost);
    EXPECT_EQ(rules[0].nth, 6u);
    EXPECT_EQ(rules[0].max_injections, 1u);
    EXPECT_EQ(rules[1].site, faults::Site::MemcpyH2D);
    EXPECT_EQ(rules[1].every, 7u);
    EXPECT_EQ(rules[1].filter, "vector");
}

TEST_F(FaultsTest, MalformedPlansAreRejectedWithInvalidValue) {
    auto expect_rejected = [this](const char* name, const std::string& body) {
        const std::string path = write_temp_plan(name, body);
        try {
            faults::enable_from_plan(path);
            ADD_FAILURE() << name << ": expected the plan to be rejected";
        } catch (const cusim::Error& e) {
            EXPECT_EQ(e.code(), ErrorCode::InvalidValue) << name;
            EXPECT_NE(std::string(e.what()).find("fault plan"), std::string::npos);
        }
        faults::reset();
    };

    expect_rejected("plan_bad_json.json", "{ not json");
    expect_rejected("plan_no_rules.json", R"({"seed": 1})");
    expect_rejected("plan_empty_rules.json", R"({"rules": []})");
    expect_rejected("plan_bad_site.json",
                    R"({"rules": [{"site": "warp", "code": "launch_failure",
                        "nth": 1}]})");
    expect_rejected("plan_bad_code.json",
                    R"({"rules": [{"site": "launch", "code": "success",
                        "nth": 1}]})");
    expect_rejected("plan_bad_probability.json",
                    R"({"rules": [{"site": "launch", "code": "launch_failure",
                        "probability": 1.5}]})");
    expect_rejected("plan_zero_max.json",
                    R"({"rules": [{"site": "launch", "code": "launch_failure",
                        "nth": 1, "max": 0}]})");
    expect_rejected("plan_no_trigger.json",
                    R"({"rules": [{"site": "launch", "code": "launch_failure"}]})");
    try {
        faults::enable_from_plan(testing::TempDir() + "definitely_missing_plan.json");
        ADD_FAILURE() << "expected a missing plan file to be rejected";
    } catch (const cusim::Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::InvalidValue);
    }
    EXPECT_FALSE(faults::armed()) << "no rejected plan may leave injection armed";
}

// --- retry_policy: deterministic jitter and the total-backoff cap ----------

TEST_F(FaultsTest, JitteredBackoffSequenceIsDeterministicAndPinned) {
    cupp::retry_policy policy;
    policy.initial_backoff_s = 1e-3;
    policy.backoff_multiplier = 2.0;
    policy.jitter = 0.25;
    policy.jitter_seed = 42;

    // The sequence is pure in (policy fields, failure_index): a second
    // policy with identical fields reproduces it bit-for-bit.
    cupp::retry_policy twin = policy;
    for (int k = 1; k <= 6; ++k) {
        const double b = policy.backoff_seconds(k);
        EXPECT_EQ(b, twin.backoff_seconds(k)) << "failure " << k;
        // Jitter stays inside [1-j, 1+j] around the exponential base.
        const double base = 1e-3 * std::pow(2.0, k - 1);
        EXPECT_GE(b, base * 0.75) << "failure " << k;
        EXPECT_LE(b, base * 1.25) << "failure " << k;
        EXPECT_NE(b, base) << "jitter must actually perturb failure " << k;
    }

    // A different seed yields a different sequence (de-synchronised
    // retriers), and jitter = 0 collapses to the exact exponential curve.
    cupp::retry_policy other = policy;
    other.jitter_seed = 43;
    EXPECT_NE(other.backoff_seconds(1), policy.backoff_seconds(1));
    cupp::retry_policy plain = policy;
    plain.jitter = 0.0;
    EXPECT_DOUBLE_EQ(plain.backoff_seconds(1), 1e-3);
    EXPECT_DOUBLE_EQ(plain.backoff_seconds(2), 2e-3);
    EXPECT_DOUBLE_EQ(plain.backoff_seconds(3), 4e-3);
}

TEST_F(FaultsTest, WithRetrySleepsExactlyTheJitteredSchedule) {
    auto r = make_rule(faults::Site::Launch, ErrorCode::LaunchFailure);
    r.every = 1;  // never recovers
    faults::configure({r});

    std::vector<double> slept;
    cupp::retry_policy policy;
    policy.max_attempts = 4;
    policy.initial_backoff_s = 1e-3;
    policy.backoff_multiplier = 2.0;
    policy.jitter = 0.5;
    policy.jitter_seed = 7;
    policy.sleep = [&](double s) { slept.push_back(s); };

    cupp::device d;
    int out = 0;
    cupp::kernel k(static_cast<AddK>(add_kernel), dim3{1}, dim3{32});
    k.set_retry_policy(policy);
    EXPECT_THROW(k(d, 1, 2, out), cupp::kernel_error);

    // 4 attempts => 3 backoffs, each exactly backoff_seconds(k).
    ASSERT_EQ(slept.size(), 3u);
    for (int k2 = 1; k2 <= 3; ++k2) {
        EXPECT_EQ(slept[static_cast<std::size_t>(k2 - 1)], policy.backoff_seconds(k2))
            << "backoff " << k2;
    }
}

TEST_F(FaultsTest, TotalBackoffCapRaisesDeadlineExceededBeforeSleeping) {
    auto r = make_rule(faults::Site::Launch, ErrorCode::LaunchFailure);
    r.every = 1;
    faults::configure({r});

    std::vector<double> slept;
    cupp::retry_policy policy;
    policy.max_attempts = 10;
    policy.initial_backoff_s = 1e-3;
    policy.backoff_multiplier = 2.0;
    policy.max_total_backoff_s = 4e-3;  // 1 ms + 2 ms fit; + 4 ms would not
    policy.sleep = [&](double s) { slept.push_back(s); };

    cupp::device d;
    int out = 0;
    cupp::kernel k(static_cast<AddK>(add_kernel), dim3{1}, dim3{32});
    k.set_retry_policy(policy);
    try {
        k(d, 1, 2, out);
        FAIL() << "expected the backoff cap to fire";
    } catch (const cupp::deadline_exceeded_error& e) {
        EXPECT_EQ(e.code(), ErrorCode::DeadlineExceeded);
        EXPECT_FALSE(e.transient()) << "this request is over; do not blind-retry";
    }
    // The third backoff (4 ms) was never slept: the cap throws first.
    ASSERT_EQ(slept.size(), 2u);
    EXPECT_DOUBLE_EQ(slept[0], 1e-3);
    EXPECT_DOUBLE_EQ(slept[1], 2e-3);
    EXPECT_EQ(faults::site_calls(faults::Site::Launch), 3u);
    EXPECT_GE(tr::metrics().counter("cupp.retry.deadline_capped"), 1u);
}

// --- the default policy: snapshots, overrides, and the old race ------------

TEST_F(FaultsTest, DefaultRetryPolicyIsASnapshotWithScopedOverrides) {
    const cupp::retry_policy saved = cupp::default_retry_policy();

    cupp::retry_policy custom;
    custom.max_attempts = 7;
    custom.initial_backoff_s = 5e-4;
    cupp::set_default_retry_policy(custom);
    EXPECT_EQ(cupp::default_retry_policy().max_attempts, 7);

    // A snapshot taken before a set_default call must not change under the
    // caller's feet (the old mutable-reference API allowed exactly that).
    const cupp::retry_policy snap = cupp::default_retry_policy();
    cupp::retry_policy changed = custom;
    changed.max_attempts = 2;
    cupp::set_default_retry_policy(changed);
    EXPECT_EQ(snap.max_attempts, 7) << "snapshots must be immutable copies";

    {
        cupp::retry_policy inner;
        inner.max_attempts = 11;
        cupp::scoped_retry_policy scope(inner);
        EXPECT_EQ(cupp::default_retry_policy().max_attempts, 11);
        {
            cupp::retry_policy innermost;
            innermost.max_attempts = 13;
            cupp::scoped_retry_policy nested(innermost);
            EXPECT_EQ(cupp::default_retry_policy().max_attempts, 13);
        }
        EXPECT_EQ(cupp::default_retry_policy().max_attempts, 11) << "nesting restores";
    }
    EXPECT_EQ(cupp::default_retry_policy().max_attempts, 2);

    cupp::set_default_retry_policy(saved);
}

TEST_F(FaultsTest, DefaultRetryPolicyConcurrentReadersAndWritersRaceFree) {
    // TSan regression for the old API, which handed out a mutable
    // reference to an unguarded global: concurrent default_retry_policy()
    // readers raced every set. Now both sides lock, and readers get a
    // consistent value copy — the correlated fields below would tear
    // otherwise. Runs in the -DCUPP_TSAN=ON set (label: tsan).
    const cupp::retry_policy saved = cupp::default_retry_policy();
    {
        // Seed a policy that satisfies the writers' invariant before any
        // reader starts checking it.
        cupp::retry_policy p;
        p.max_attempts = 1;
        p.initial_backoff_s = 1e-3;
        cupp::set_default_retry_policy(p);
    }

    std::atomic<bool> stop{false};
    std::atomic<int> torn{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                const cupp::retry_policy p = cupp::default_retry_policy();
                // Writers always keep initial_backoff_s == max_attempts
                // * 1e-3; a torn read breaks the invariant.
                if (p.initial_backoff_s != static_cast<double>(p.max_attempts) * 1e-3) {
                    torn.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 1; i <= 500; ++i) {
                cupp::retry_policy p;
                p.max_attempts = (t * 500 + i) % 16 + 1;
                p.initial_backoff_s = static_cast<double>(p.max_attempts) * 1e-3;
                cupp::set_default_retry_policy(p);
            }
        });
    }
    for (std::size_t i = 2; i < threads.size(); ++i) threads[i].join();
    stop.store(true, std::memory_order_relaxed);
    threads[0].join();
    threads[1].join();
    EXPECT_EQ(torn.load(), 0) << "default_retry_policy returned a torn snapshot";

    cupp::set_default_retry_policy(saved);
}

// --- service-layer error codes through the taxonomy ------------------------

TEST_F(FaultsTest, ServiceCodesSurviveRethrowWithoutCollapsing) {
    try {
        cupp::rethrow(ErrorCode::AdmissionRejected, "quota");
        FAIL() << "rethrow must throw";
    } catch (const cupp::admission_rejected_error& e) {
        EXPECT_EQ(e.code(), ErrorCode::AdmissionRejected);
        EXPECT_FALSE(e.transient());
        EXPECT_FALSE(cupp::is_sticky(e.code()));
    }
    try {
        cupp::rethrow(ErrorCode::DeadlineExceeded, "late");
        FAIL() << "rethrow must throw";
    } catch (const cupp::deadline_exceeded_error& e) {
        EXPECT_EQ(e.code(), ErrorCode::DeadlineExceeded);
        EXPECT_FALSE(e.transient());
        EXPECT_FALSE(cupp::is_sticky(e.code()));
    }
    EXPECT_STREQ(cusim::error_string(ErrorCode::AdmissionRejected),
                 "admission rejected (load shed)");
    EXPECT_STREQ(cusim::error_string(ErrorCode::DeadlineExceeded), "deadline exceeded");

    // Service outcomes are raised above the device: the fault planner must
    // refuse to inject them at device call sites.
    ErrorCode out{};
    EXPECT_FALSE(faults::parse_code("admission_rejected", &out));
    EXPECT_FALSE(faults::parse_code("deadline_exceeded", &out));
}

TEST_F(FaultsTest, SeedPlanIsTransientOnly) {
    faults::enable_with_seed(3);
    EXPECT_TRUE(faults::enabled());
    EXPECT_EQ(faults::plan_source(), "seed:3");
    const auto rules = faults::rules();
    ASSERT_FALSE(rules.empty());
    for (const auto& r : rules) {
        EXPECT_TRUE(cupp::is_transient(r.code))
            << "the default plan must never inject sticky faults";
        EXPECT_GT(r.probability, 0.0);
    }
}

}  // namespace
