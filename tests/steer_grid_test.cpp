// Spatial-grid neighbor search (the thesis' future-work data structure):
// host grid against the brute-force oracle, and the GPU grid kernel against
// the host grid.
#include <gtest/gtest.h>

#include <algorithm>

#include "gpusteer/grid_kernels.hpp"
#include "steer/steer.hpp"

namespace {

using namespace steer;

std::vector<std::uint32_t> sorted_indices(const NeighborList& list) {
    std::vector<std::uint32_t> out(list.index.begin(), list.index.begin() + list.count);
    std::sort(out.begin(), out.end());
    return out;
}

class GridVsBruteForce : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GridVsBruteForce, SameNeighborsForEveryAgent) {
    WorldSpec spec;
    spec.agents = GetParam();
    spec.seed = 1000 + GetParam();
    const auto flock = make_flock(spec);
    std::vector<Vec3> positions(flock.size());
    for (std::size_t i = 0; i < flock.size(); ++i) positions[i] = flock[i].position;

    SpatialGrid grid;
    grid.build(positions, spec.search_radius, spec.world_radius);

    for (std::uint32_t me = 0; me < spec.agents; me += 3) {
        const auto brute =
            find_neighbors(me, positions, spec.search_radius, spec.max_neighbors);
        const auto via_grid = grid.find_neighbors(me, positions, spec.search_radius,
                                                  spec.max_neighbors);
        // The 7-nearest set is order-independent (ties are measure-zero with
        // random float positions).
        EXPECT_EQ(sorted_indices(via_grid), sorted_indices(brute)) << "agent " << me;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GridVsBruteForce,
                         ::testing::Values(16u, 100u, 512u, 2000u));

TEST(SpatialGrid, ExaminesFarFewerPairsAtScale) {
    WorldSpec spec;
    spec.agents = 4096;
    const auto flock = make_flock(spec);
    std::vector<Vec3> positions(flock.size());
    for (std::size_t i = 0; i < flock.size(); ++i) positions[i] = flock[i].position;

    SpatialGrid grid;
    grid.build(positions, spec.search_radius, spec.world_radius);

    SearchCounters brute_c, grid_c;
    for (std::uint32_t me = 0; me < spec.agents; ++me) {
        (void)find_neighbors(me, positions, spec.search_radius, spec.max_neighbors,
                             &brute_c);
        (void)grid.find_neighbors(me, positions, spec.search_radius, spec.max_neighbors,
                                  &grid_c);
    }
    EXPECT_EQ(brute_c.in_radius, grid_c.in_radius);  // found the same candidates
    EXPECT_LT(grid_c.pairs_examined, brute_c.pairs_examined / 10);
}

TEST(SpatialGrid, CsrInvariants) {
    WorldSpec spec;
    spec.agents = 777;
    const auto flock = make_flock(spec);
    std::vector<Vec3> positions(flock.size());
    for (std::size_t i = 0; i < flock.size(); ++i) positions[i] = flock[i].position;

    SpatialGrid grid;
    grid.build(positions, spec.search_radius, spec.world_radius);
    const auto starts = grid.cell_start();
    const auto entries = grid.entries();

    // Monotone prefix sums covering every agent exactly once.
    ASSERT_EQ(starts.size(), grid.spec().cells() + 1u);
    EXPECT_EQ(starts.front(), 0u);
    EXPECT_EQ(starts.back(), spec.agents);
    for (std::size_t c = 0; c + 1 < starts.size(); ++c) EXPECT_LE(starts[c], starts[c + 1]);

    std::vector<bool> seen(spec.agents, false);
    for (const auto e : entries) {
        ASSERT_LT(e, spec.agents);
        EXPECT_FALSE(seen[e]) << "agent appears twice";
        seen[e] = true;
    }

    // Every agent sits in the cell its bucket claims.
    for (std::uint32_t c = 0; c < grid.spec().cells(); ++c) {
        for (std::uint32_t i = starts[c]; i < starts[c + 1]; ++i) {
            EXPECT_EQ(grid.spec().cell_of(positions[entries[i]]), c);
        }
    }
}

TEST(SpatialGrid, EmptyAndSingleAgent) {
    SpatialGrid grid;
    std::vector<Vec3> one = {{0, 0, 0}};
    grid.build(one, 5.0f, 50.0f);
    const auto list = grid.find_neighbors(0, one, 5.0f, 7);
    EXPECT_EQ(list.count, 0u);

    std::vector<Vec3> none;
    grid.build(none, 5.0f, 50.0f);
    EXPECT_EQ(grid.entries().size(), 0u);
}

TEST(SpatialGrid, AgentsOnTheWorldBoundary) {
    // wrap_world clamps agents to |p| <= R; cells must clamp, not overflow.
    std::vector<Vec3> positions = {{50, 50, 50}, {-50, -50, -50}, {49.5f, 50, 50}};
    SpatialGrid grid;
    grid.build(positions, 9.0f, 50.0f);
    const auto list = grid.find_neighbors(0, positions, 9.0f, 7);
    ASSERT_EQ(list.count, 1u);
    EXPECT_EQ(list.index[0], 2u);
}

TEST(GridKernel, MatchesHostGridSearch) {
    WorldSpec spec;
    spec.agents = 512;
    const auto flock = make_flock(spec);
    std::vector<Vec3> host_positions(flock.size());
    for (std::size_t i = 0; i < flock.size(); ++i) host_positions[i] = flock[i].position;

    // Host side.
    SpatialGrid host_grid;
    host_grid.build(host_positions, spec.search_radius, spec.world_radius);

    // Device side.
    cupp::device d;
    cupp::vector<Vec3> positions(host_positions.begin(), host_positions.end());
    gpusteer::GridUpload upload;
    upload.build(host_positions, spec.search_radius, spec.world_radius);
    cupp::vector<std::uint32_t> result(std::uint64_t{spec.agents} * NeighborList::kCapacity);
    cupp::vector<std::uint32_t> counts(spec.agents);

    using F = cusim::KernelTask (*)(cusim::ThreadCtx&, const gpusteer::DVec3&,
                                    const gpusteer::DU32&, const gpusteer::DU32&, GridSpec,
                                    float, gpusteer::DU32&, gpusteer::DU32&,
                                    gpusteer::ThinkMap);
    cupp::kernel k(static_cast<F>(gpusteer::ns_grid_kernel), cusim::dim3{4},
                   cusim::dim3{128});
    k(d, positions, upload.cell_start(), upload.entries(), upload.spec(),
      spec.search_radius, result, counts, gpusteer::ThinkMap{});

    for (std::uint32_t me = 0; me < spec.agents; ++me) {
        const auto host_list = host_grid.find_neighbors(me, host_positions,
                                                        spec.search_radius,
                                                        spec.max_neighbors);
        NeighborList dev_list;
        dev_list.count = counts[me];
        for (std::uint32_t j = 0; j < dev_list.count; ++j) {
            dev_list.index[j] = result[std::uint64_t{me} * NeighborList::kCapacity + j];
        }
        EXPECT_EQ(sorted_indices(dev_list), sorted_indices(host_list)) << "agent " << me;
    }
}

}  // namespace
