// cupp::shared_device_ptr semantics (thesis §4.2): shared ownership with
// boost-style refcounts, automatic free of the underlying global memory at
// the last release, aliasing on copy (the handle is shared, the device data
// is one block), and interop with asynchronous streams (the free at the
// last release joins queued work that still targets the block).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cupp/cupp.hpp"

namespace {

using cusim::KernelTask;
using cusim::ThreadCtx;

TEST(SharedPtr, RefcountLifecycle) {
    cupp::device d;
    cupp::shared_device_ptr<int> p;
    EXPECT_FALSE(p);
    EXPECT_EQ(p.use_count(), 0);
    EXPECT_EQ(p.size(), 0u);

    p = cupp::shared_device_ptr<int>(d, 16);
    EXPECT_TRUE(p);
    EXPECT_TRUE(p.unique());
    EXPECT_EQ(p.size(), 16u);

    cupp::shared_device_ptr<int> q = p;
    EXPECT_EQ(p.use_count(), 2);
    EXPECT_EQ(q.use_count(), 2);
    EXPECT_FALSE(p.unique());
    EXPECT_EQ(p, q);  // copies alias the same block

    q.reset();
    EXPECT_TRUE(p.unique());
    EXPECT_FALSE(q);
}

TEST(SharedPtr, CopiesShareTheSameDeviceBlock) {
    cupp::device d;
    cupp::shared_device_ptr<int> p(d, 8);
    cupp::shared_device_ptr<int> q = p;
    EXPECT_EQ(p.addr(), q.addr());

    std::vector<int> src(8);
    std::iota(src.begin(), src.end(), 100);
    p.upload(src.data());

    // A write through one handle is visible through the other: the copy is
    // shallow by design (unlike cupp::vector's deep dataset copy).
    std::vector<int> dst(8, 0);
    q.download(dst.data());
    EXPECT_EQ(dst, src);
}

TEST(SharedPtr, LastReleaseFreesTheGlobalMemory) {
    cupp::device d;
    const auto used_before = d.sim().memory().used();
    {
        cupp::shared_device_ptr<float> p(d, 1024);
        EXPECT_GT(d.sim().memory().used(), used_before);
        {
            cupp::shared_device_ptr<float> q = p;
            cupp::shared_device_ptr<float> r = q;
            EXPECT_EQ(p.use_count(), 3);
        }
        // Inner copies gone, block still owned.
        EXPECT_TRUE(p.unique());
        EXPECT_GT(d.sim().memory().used(), used_before);
    }
    EXPECT_EQ(d.sim().memory().used(), used_before);
}

TEST(SharedPtr, SwapAndSelfAssignment) {
    cupp::device d;
    cupp::shared_device_ptr<int> a(d, 4);
    cupp::shared_device_ptr<int> b(d, 8);
    const auto addr_a = a.addr();
    const auto addr_b = b.addr();
    a.swap(b);
    EXPECT_EQ(a.addr(), addr_b);
    EXPECT_EQ(b.addr(), addr_a);
    EXPECT_EQ(a.size(), 8u);

    a = *&a;  // self-assignment keeps the block alive
    EXPECT_TRUE(a);
    EXPECT_EQ(a.addr(), addr_b);
    EXPECT_TRUE(a.unique());
}

KernelTask bump_kernel(ThreadCtx& ctx, cusim::DevicePtr<int> data) {
    data.write(ctx, ctx.global_id(), data.read(ctx, ctx.global_id()) + 1);
    co_return;
}

TEST(SharedPtr, KernelWritesThroughDevicePtrView) {
    cupp::device d;
    cupp::shared_device_ptr<int> p(d, 32);
    std::vector<int> src(32, 41);
    p.upload(src.data());
    d.sim().launch(cusim::LaunchConfig{cusim::dim3{1}, cusim::dim3{32}},
                   [&](ThreadCtx& ctx) { return bump_kernel(ctx, p.device_ptr()); },
                   "bump");
    std::vector<int> dst(32, 0);
    p.download(dst.data());
    for (int v : dst) EXPECT_EQ(v, 42);
}

TEST(SharedPtr, AsyncCopyIntoSharedBlockCompletesBeforeTheFree) {
    cupp::device d;
    std::vector<int> dst(16, 0);
    {
        cupp::stream s(d);
        cupp::shared_device_ptr<int> p(d, 16);
        std::vector<int> src(16);
        std::iota(src.begin(), src.end(), 1);
        p.upload(src.data());
        // Queue a D2H against the shared block, then drop every handle
        // before synchronizing: the State dtor's free joins the stream, so
        // the queued copy reads the block before it is released.
        d.sim().memcpy_to_host_async(dst.data(), p.addr(), 16 * sizeof(int), s.id());
    }
    for (int i = 0; i < 16; ++i) EXPECT_EQ(dst[i], i + 1);
}

}  // namespace
