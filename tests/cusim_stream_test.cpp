// cusim stream & event semantics: deferred FIFO execution, cross-stream
// event ordering, query/synchronize/NotReady behaviour, the runtime-API
// mirrors, per-stream trace lanes and counters, async host-race detection,
// and fault injection at the async entry points. The determinism contract
// across engine thread counts lives in cusim_stream_diff_test.cpp.
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "cupp/trace.hpp"
#include "cusim/cusim.hpp"
#include "cusim/faults.hpp"
#include "cusim/runtime_api.hpp"

namespace {

using namespace cusim;

KernelTask fill_kernel(ThreadCtx& ctx, DevicePtr<int> out, int value) {
    out.write(ctx, ctx.global_id(), value);
    co_return;
}

KernelTask add_kernel(ThreadCtx& ctx, DevicePtr<int> data, int delta) {
    const int v = data.read(ctx, ctx.global_id());
    data.write(ctx, ctx.global_id(), v + delta);
    co_return;
}

LaunchConfig small_cfg() { return LaunchConfig{dim3{2}, dim3{16}}; }

// Compute-heavy: modelled duration far above the µs-scale host overhead of
// enqueueing, so timing assertions see the kernel, not the issue cost.
KernelTask burn_kernel(ThreadCtx& ctx, DevicePtr<int> out, int value) {
    ctx.charge(Op::FMad, 1'000'000);
    out.write(ctx, ctx.global_id(), value);
    co_return;
}

TEST(Stream, CreateQueryDestroy) {
    Device dev(tiny_properties());
    const StreamId s = dev.stream_create();
    EXPECT_NE(s, kDefaultStream);
    EXPECT_TRUE(dev.stream_query(s));  // fresh stream: idle
    dev.stream_destroy(s);
    EXPECT_THROW((void)dev.stream_query(s), Error);
    EXPECT_THROW(dev.stream_destroy(s), Error);
}

TEST(Stream, RaiiHandlesAreMoveOnly) {
    Device dev(tiny_properties());
    Stream a(dev);
    const StreamId id = a.id();
    Stream b(std::move(a));
    EXPECT_EQ(b.id(), id);
    EXPECT_TRUE(b.query());
    Event ev(dev);
    ev.record(b);
    b.synchronize();
    EXPECT_TRUE(ev.query());
}

TEST(Stream, LaunchIsDeferredUntilSynchronize) {
    Device dev(tiny_properties());
    const LaunchConfig cfg = small_cfg();
    auto buf = dev.malloc_n<int>(cfg.total_threads());
    const StreamId s = dev.stream_create();

    const std::uint64_t launches_before = dev.launches();
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 7); },
                     "fill", s);
    // Enqueued, not executed: the launch counter and the queue say so.
    EXPECT_EQ(dev.launches(), launches_before);
    EXPECT_EQ(dev.pending_async_ops(), 1u);
    EXPECT_FALSE(dev.stream_query(s));

    dev.stream_synchronize(s);
    EXPECT_EQ(dev.launches(), launches_before + 1);
    EXPECT_EQ(dev.pending_async_ops(), 0u);
    EXPECT_TRUE(dev.stream_query(s));

    std::vector<int> host(cfg.total_threads());
    dev.download(std::span<int>(host), buf);
    for (int v : host) EXPECT_EQ(v, 7);
}

TEST(Stream, FifoOrderWithinOneStream) {
    Device dev(tiny_properties());
    const LaunchConfig cfg = small_cfg();
    auto buf = dev.malloc_n<int>(cfg.total_threads());
    const StreamId s = dev.stream_create();
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 10); },
                     "fill", s);
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return add_kernel(ctx, buf, 5); },
                     "add", s);
    dev.stream_synchronize(s);
    std::vector<int> host(cfg.total_threads());
    dev.download(std::span<int>(host), buf);
    for (int v : host) EXPECT_EQ(v, 15);  // fill before add, FIFO
}

TEST(Stream, AsyncH2DSnapshotsTheSourceAtEnqueue) {
    Device dev(tiny_properties());
    auto buf = dev.malloc_n<int>(8);
    const StreamId s = dev.stream_create();
    std::vector<int> src(8, 42);
    dev.memcpy_to_device_async(buf.addr(), src.data(), src.size() * sizeof(int), s);
    // Pageable semantics: mutating the source now must not affect the copy.
    std::fill(src.begin(), src.end(), -1);
    dev.stream_synchronize(s);
    std::vector<int> host(8);
    dev.download(std::span<int>(host), buf);
    for (int v : host) EXPECT_EQ(v, 42);
}

TEST(Stream, AsyncD2HWritesDestinationOnlyAtDrain) {
    Device dev(tiny_properties());
    auto buf = dev.malloc_n<int>(4);
    const std::vector<int> init{1, 2, 3, 4};
    dev.upload(buf, std::span<const int>(init));
    const StreamId s = dev.stream_create();
    std::vector<int> dst(4, 0);
    dev.memcpy_to_host_async(dst.data(), buf.addr(), dst.size() * sizeof(int), s);
    EXPECT_EQ(dst, std::vector<int>({0, 0, 0, 0}));  // still queued
    dev.stream_synchronize(s);
    EXPECT_EQ(dst, init);
}

TEST(Stream, LegacyOpJoinsAllStreams) {
    Device dev(tiny_properties());
    const LaunchConfig cfg = small_cfg();
    auto buf = dev.malloc_n<int>(cfg.total_threads());
    const StreamId s = dev.stream_create();
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 3); },
                     "fill", s);
    // No explicit stream sync: the legacy download must execute the queue
    // first (default-stream semantics).
    std::vector<int> host(cfg.total_threads());
    dev.download(std::span<int>(host), buf);
    for (int v : host) EXPECT_EQ(v, 3);
    EXPECT_EQ(dev.pending_async_ops(), 0u);
}

TEST(Stream, WaitEventOrdersAcrossStreams) {
    Device dev(tiny_properties());
    const LaunchConfig cfg = small_cfg();
    auto buf = dev.malloc_n<int>(cfg.total_threads());
    // Consumer has the *smaller* id, so the drain visits it first and must
    // yield on the wait until the producer's record has executed.
    const StreamId consumer = dev.stream_create();
    const StreamId producer = dev.stream_create();
    ASSERT_LT(consumer, producer);
    const EventId ev = dev.event_create();

    const EventId before = dev.event_create();
    dev.event_record(before, producer);
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 100); },
                     "produce", producer);
    dev.event_record(ev, producer);
    dev.stream_wait_event(consumer, ev);
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return add_kernel(ctx, buf, 11); },
                     "consume", consumer);
    dev.synchronize();

    std::vector<int> host(cfg.total_threads());
    dev.download(std::span<int>(host), buf);
    for (int v : host) EXPECT_EQ(v, 111);  // produce happened before consume

    // The consumer's modelled clock also ordered behind the producer's.
    const double gap_ms = dev.event_elapsed_ms(before, ev);
    EXPECT_GT(gap_ms, 0.0);
}

TEST(Stream, WaitOnUnrecordedEventIsANoOp) {
    Device dev(tiny_properties());
    const StreamId s = dev.stream_create();
    const EventId ev = dev.event_create();
    dev.stream_wait_event(s, ev);  // never recorded: must not stall
    dev.stream_synchronize(s);
    EXPECT_TRUE(dev.stream_query(s));
}

TEST(Stream, WaitCapturesTheRecordAtEnqueueTime) {
    Device dev(tiny_properties());
    const LaunchConfig cfg = small_cfg();
    auto buf = dev.malloc_n<int>(cfg.total_threads());
    const StreamId a = dev.stream_create();
    const StreamId b = dev.stream_create();
    const EventId ev = dev.event_create();
    dev.event_record(ev, a);
    dev.stream_wait_event(b, ev);
    // Re-recording after the wait was enqueued must not move that wait.
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 1); },
                     "late", a);
    dev.event_record(ev, a);
    dev.stream_synchronize(b);  // drains; would stall if the wait tracked the re-record
    SUCCEED();
    dev.synchronize();
}

TEST(Event, QueryAndSynchronizeSemantics) {
    Device dev(tiny_properties());
    const LaunchConfig cfg = small_cfg();
    auto buf = dev.malloc_n<int>(cfg.total_threads());
    const StreamId s = dev.stream_create();
    const EventId ev = dev.event_create();
    EXPECT_THROW((void)dev.event_query(999999), Error);

    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 1); },
                     "fill", s);
    dev.event_record(ev, s);
    EXPECT_FALSE(dev.event_query(ev));  // record still queued
    dev.event_synchronize(ev);
    EXPECT_TRUE(dev.event_query(ev));
    // The stream's tail op was the record, so the whole stream is idle too.
    EXPECT_TRUE(dev.stream_query(s));
}

TEST(Event, ElapsedMeasuresModelledKernelTime) {
    Device dev(tiny_properties());
    const LaunchConfig cfg = small_cfg();
    auto buf = dev.malloc_n<int>(cfg.total_threads());
    const StreamId s = dev.stream_create();
    const EventId t0 = dev.event_create();
    const EventId t1 = dev.event_create();
    dev.event_record(t0, s);
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return burn_kernel(ctx, buf, 2); },
                     "burn", s);
    dev.event_record(t1, s);
    dev.stream_synchronize(s);
    const double ms = dev.event_elapsed_ms(t0, t1);
    // Elapsed covers the kernel plus only the µs-scale gap between the t0
    // record completing and the launch being issued on the host.
    const double kernel_ms = dev.last_launch().device_seconds * 1e3;
    EXPECT_GT(kernel_ms, 0.0);
    EXPECT_GE(ms, kernel_ms);
    EXPECT_LT(ms - kernel_ms, 0.1);

    const EventId never = dev.event_create();
    EXPECT_THROW((void)dev.event_elapsed_ms(t0, never), Error);
}

TEST(Event, ElapsedTimeOnNeverRecordedEventIsInvalidValueWithZeroOutput) {
    using namespace cusim::rt;
    ASSERT_EQ(cusimSetDevice(0), ErrorCode::Success);
    EventId recorded = 0, never = 0;
    ASSERT_EQ(cusimEventCreate(&recorded), ErrorCode::Success);
    ASSERT_EQ(cusimEventCreate(&never), ErrorCode::Success);
    ASSERT_EQ(cusimEventRecord(recorded, kDefaultStream), ErrorCode::Success);
    ASSERT_EQ(cusimEventSynchronize(recorded), ErrorCode::Success);

    float ms = -1.0f;  // sentinel: the call must overwrite it on failure too
    EXPECT_EQ(cusimEventElapsedTime(&ms, recorded, never), ErrorCode::InvalidValue);
    EXPECT_EQ(ms, 0.0f);
    ms = -1.0f;
    EXPECT_EQ(cusimEventElapsedTime(&ms, never, recorded), ErrorCode::InvalidValue);
    EXPECT_EQ(ms, 0.0f);
    ms = -1.0f;
    EXPECT_EQ(cusimEventElapsedTime(&ms, recorded, 999999), ErrorCode::InvalidValue);
    EXPECT_EQ(ms, 0.0f);
    EXPECT_EQ(cusimEventElapsedTime(nullptr, recorded, recorded),
              ErrorCode::InvalidValue);
    (void)cusimGetLastError();  // clear the sticky error for later tests

    EXPECT_EQ(cusimEventDestroy(recorded), ErrorCode::Success);
    EXPECT_EQ(cusimEventDestroy(never), ErrorCode::Success);
}

TEST(Event, ElapsedTimeOnUnreachedReRecordIsNotReadyWithZeroOutput) {
    using namespace cusim::rt;
    ASSERT_EQ(cusimSetDevice(0), ErrorCode::Success);
    Device& dev = Registry::instance().current_device();
    const LaunchConfig cfg = small_cfg();
    auto buf = dev.malloc_n<int>(cfg.total_threads());
    const StreamId s = dev.stream_create();

    EventId t0 = 0, t1 = 0;
    ASSERT_EQ(cusimEventCreate(&t0), ErrorCode::Success);
    ASSERT_EQ(cusimEventCreate(&t1), ErrorCode::Success);
    ASSERT_EQ(cusimEventRecord(t0, s), ErrorCode::Success);
    ASSERT_EQ(cusimEventRecord(t1, s), ErrorCode::Success);
    ASSERT_EQ(cusimEventSynchronize(t1), ErrorCode::Success);

    // Re-record t1 behind a compute-heavy kernel: the new record's modelled
    // completion lies beyond the host clock until the host synchronizes.
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return burn_kernel(ctx, buf, 3); },
                     "burn", s);
    ASSERT_EQ(cusimEventRecord(t1, s), ErrorCode::Success);

    float ms = -1.0f;
    EXPECT_EQ(cusimEventElapsedTime(&ms, t0, t1), ErrorCode::NotReady);
    EXPECT_EQ(ms, 0.0f);  // defined output even on the NotReady path
    (void)cusimGetLastError();

    ASSERT_EQ(cusimEventSynchronize(t1), ErrorCode::Success);
    ms = -1.0f;
    ASSERT_EQ(cusimEventElapsedTime(&ms, t0, t1), ErrorCode::Success);
    EXPECT_GT(ms, 0.0f);

    EXPECT_EQ(cusimEventDestroy(t0), ErrorCode::Success);
    EXPECT_EQ(cusimEventDestroy(t1), ErrorCode::Success);
    dev.stream_destroy(s);
}

TEST(Event, WaitEventOnEmptyRecordIsADefinedNoOp) {
    using namespace cusim::rt;
    ASSERT_EQ(cusimSetDevice(0), ErrorCode::Success);
    StreamId s = 0;
    ASSERT_EQ(cusimStreamCreate(&s), ErrorCode::Success);
    EventId ev = 0;
    ASSERT_EQ(cusimEventCreate(&ev), ErrorCode::Success);
    // No record has ever executed for `ev`: the wait must succeed as a no-op
    // and must not leave the stream blocked on anything.
    EXPECT_EQ(cusimStreamWaitEvent(s, ev), ErrorCode::Success);
    EXPECT_EQ(cusimStreamSynchronize(s), ErrorCode::Success);
    EXPECT_EQ(cusimStreamQuery(s), ErrorCode::Success);
    EXPECT_EQ(cusimEventDestroy(ev), ErrorCode::Success);
    EXPECT_EQ(cusimStreamDestroy(s), ErrorCode::Success);
}

TEST(Stream, IndependentStreamsOverlapOnTheModelledTimeline) {
    Device dev(tiny_properties());
    const LaunchConfig cfg = small_cfg();
    auto a = dev.malloc_n<int>(cfg.total_threads());
    auto b = dev.malloc_n<int>(cfg.total_threads());
    const StreamId s1 = dev.stream_create();
    const StreamId s2 = dev.stream_create();
    const double issue = dev.host_time();
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return burn_kernel(ctx, a, 1); },
                     "a", s1);
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return burn_kernel(ctx, b, 2); },
                     "b", s2);
    dev.synchronize();
    const double makespan = dev.host_time() - issue;
    const double per_kernel = dev.last_launch().device_seconds;
    // Two equal kernels on independent streams: the makespan is one kernel
    // (plus issue overhead), not two — async enqueue overlapped them.
    EXPECT_LT(makespan, 2.0 * per_kernel);
    EXPECT_GE(makespan, per_kernel);
}

TEST(Stream, DeferredKernelFailureSurfacesAtSynchronize) {
    Device dev(tiny_properties());
    const StreamId s = dev.stream_create();
    dev.launch_async(
        small_cfg(),
        [](ThreadCtx& ctx) -> KernelTask {
            if (ctx.global_id() == 0) throw std::runtime_error("deferred boom");
            co_return;
        },
        "boom", s);
    try {
        dev.stream_synchronize(s);
        FAIL() << "expected the deferred failure at the sync point";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::LaunchFailure);
        EXPECT_NE(std::string(e.what()).find("deferred boom"), std::string::npos);
    }
    // The faulting op was consumed: the stream stays usable.
    dev.stream_synchronize(s);
    EXPECT_TRUE(dev.stream_query(s));
}

TEST(Stream, ResetDeviceAbandonsQueuedWork) {
    Device dev(tiny_properties());
    const LaunchConfig cfg = small_cfg();
    auto buf = dev.malloc_n<int>(cfg.total_threads());
    const StreamId s = dev.stream_create();
    const EventId ev = dev.event_create();
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 9); },
                     "doomed", s);
    dev.event_record(ev, s);
    dev.reset_device();
    EXPECT_EQ(dev.pending_async_ops(), 0u);
    // The orphaned record completed at the reset point: no stall, no NotReady.
    dev.event_synchronize(ev);
    EXPECT_TRUE(dev.event_query(ev));
    dev.stream_synchronize(s);
}

TEST(Stream, UnknownIdsAreInvalidValue) {
    Device dev(tiny_properties());
    (void)dev.stream_create();  // materialise the table
    const auto code = [](auto&& fn) {
        try {
            fn();
        } catch (const Error& e) {
            return e.code();
        }
        return ErrorCode::Success;
    };
    EXPECT_EQ(code([&] { dev.stream_synchronize(404); }), ErrorCode::InvalidValue);
    EXPECT_EQ(code([&] {
                  dev.launch_async(small_cfg(), [](ThreadCtx&) -> KernelTask { co_return; },
                                   "x", 404);
              }),
              ErrorCode::InvalidValue);
    EXPECT_EQ(code([&] { dev.event_record(404, kDefaultStream); }),
              ErrorCode::InvalidValue);
    EXPECT_EQ(code([&] { dev.event_synchronize(404); }), ErrorCode::InvalidValue);
    EXPECT_EQ(code([&] { dev.stream_wait_event(404, 404); }), ErrorCode::InvalidValue);
}

// --- per-stream trace lanes & counters --------------------------------------

TEST(Stream, TraceLanesAndCounters) {
    cupp::trace::enable();
    cupp::trace::clear();
    cupp::trace::metrics().reset();
    {
        Device dev(tiny_properties());
        const LaunchConfig cfg = small_cfg();
        auto buf = dev.malloc_n<int>(cfg.total_threads());
        const StreamId s = dev.stream_create();
        std::vector<int> host(cfg.total_threads(), 5);
        dev.memcpy_to_device_async(buf.addr(), host.data(),
                                   host.size() * sizeof(int), s);
        dev.launch_async(cfg, [&](ThreadCtx& ctx) { return add_kernel(ctx, buf, 1); },
                         "bump", s);
        dev.memcpy_to_host_async(host.data(), buf.addr(), host.size() * sizeof(int), s);
        dev.stream_synchronize(s);

        const std::string lane = dev.stream_track(s);
        EXPECT_NE(lane.find(".stream"), std::string::npos) << lane;
        bool kernel_on_lane = false, h2d_on_lane = false, d2h_on_lane = false;
        for (const auto& e : cupp::trace::events()) {
            if (e.track != lane) continue;
            if (e.name == "bump") kernel_on_lane = true;
            if (e.name.find("H2D") != std::string::npos) h2d_on_lane = true;
            if (e.name.find("D2H") != std::string::npos) d2h_on_lane = true;
        }
        EXPECT_TRUE(kernel_on_lane);
        EXPECT_TRUE(h2d_on_lane);
        EXPECT_TRUE(d2h_on_lane);

        auto& m = cupp::trace::metrics();
        EXPECT_EQ(m.counter("cusim.stream.created"), 1u);
        EXPECT_EQ(m.counter("cusim.stream.ops_enqueued"), 3u);
        EXPECT_EQ(m.counter("cusim.stream.kernel_launches"), 1u);
        EXPECT_EQ(m.counter("cusim.stream.bytes_h2d"), host.size() * sizeof(int));
        EXPECT_EQ(m.counter("cusim.stream.bytes_d2h"), host.size() * sizeof(int));
    }
    cupp::trace::disable();
    cupp::trace::clear();
    cupp::trace::metrics().reset();
}

// --- async host-race detection (memcheck) ------------------------------------

TEST(Stream, MemcheckReportsHostReadRacingAsyncD2H) {
    memcheck::enable();
    memcheck::reset();
    {
        Device dev(tiny_properties());
        auto buf = dev.malloc_n<int>(8);
        const std::vector<int> init(8, 1);
        dev.upload(buf, std::span<const int>(init));
        const StreamId s = dev.stream_create();
        std::vector<int> dst(8, 0);
        dev.memcpy_to_host_async(dst.data(), buf.addr(), dst.size() * sizeof(int), s);
        // Reading the destination before the sync is the race.
        dev.note_host_read(dst.data(), sizeof(int));
        const std::string report = memcheck::report_json();
        EXPECT_NE(report.find("async_host_race"), std::string::npos) << report;

        // After the covering synchronize the range is settled: no new report.
        dev.stream_synchronize(s);
        memcheck::reset();
        dev.note_host_read(dst.data(), sizeof(int));
        const std::string clean = memcheck::report_json();
        EXPECT_EQ(clean.find("async_host_race"), std::string::npos) << clean;

        // Disjoint ranges never race.
        dev.memcpy_to_host_async(dst.data(), buf.addr(), 4 * sizeof(int), s);
        dev.note_host_read(dst.data() + 6, sizeof(int));
        EXPECT_EQ(memcheck::report_json().find("async_host_race"), std::string::npos);
        dev.stream_synchronize(s);
    }
    memcheck::disable();
    memcheck::reset();
}

// --- fault injection at the async entry points --------------------------------

TEST(Stream, FaultInjectionFiresAtAsyncSites) {
    Device dev(tiny_properties());
    const LaunchConfig cfg = small_cfg();
    auto buf = dev.malloc_n<int>(cfg.total_threads());
    const StreamId s = dev.stream_create();

    faults::Rule rule;
    rule.site = faults::Site::Launch;
    rule.code = ErrorCode::LaunchFailure;
    rule.every = 1;
    faults::configure({rule});
    EXPECT_THROW(dev.launch_async(cfg,
                                  [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 1); },
                                  "faulted", s),
                 Error);
    // Atomic rejection: nothing was half-enqueued.
    EXPECT_EQ(dev.pending_async_ops(), 0u);
    EXPECT_EQ(faults::injections(faults::Site::Launch), 1u);

    rule.site = faults::Site::Sync;
    rule.code = ErrorCode::TransferFailure;
    faults::configure({rule});
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 2); },
                     "queued", s);
    EXPECT_THROW(dev.stream_synchronize(s), Error);
    // The op survived the rejected sync; a clean retry drains it.
    faults::disable();
    dev.stream_synchronize(s);
    EXPECT_EQ(dev.pending_async_ops(), 0u);
    std::vector<int> host(cfg.total_threads());
    dev.download(std::span<int>(host), buf);
    for (int v : host) EXPECT_EQ(v, 2);
    faults::reset();
}

// --- runtime-API mirrors ------------------------------------------------------

KernelTask rt_fill(ThreadCtx& ctx, Device& dev, const std::byte* stack) {
    DeviceAddr addr;
    int value;
    std::memcpy(&addr, stack, sizeof(addr));
    std::memcpy(&value, stack + sizeof(addr), sizeof(value));
    auto view = dev.view<int>(addr, ctx.grid_dim().count() * ctx.block_dim().count());
    view.write(ctx, ctx.global_id(), value);
    co_return;
}

TEST(RuntimeApi, StreamAndEventMirrors) {
    using namespace cusim::rt;
    static KernelHandle handle = register_kernel(
        [](ThreadCtx& ctx, Device& dev, const std::byte* stack) {
            return rt_fill(ctx, dev, stack);
        });

    ASSERT_EQ(cusimSetDevice(0), ErrorCode::Success);
    StreamId s = 0;
    ASSERT_EQ(cusimStreamCreate(&s), ErrorCode::Success);
    EXPECT_NE(s, kDefaultStream);
    EXPECT_EQ(cusimStreamQuery(s), ErrorCode::Success);

    DeviceAddr buf = 0;
    const LaunchConfig cfg = small_cfg();
    ASSERT_EQ(cusimMalloc(&buf, cfg.total_threads() * sizeof(int)), ErrorCode::Success);

    ASSERT_EQ(cusimConfigureCall(cfg.grid, cfg.block, 0, 0), ErrorCode::Success);
    int value = 21;
    ASSERT_EQ(cusimSetupArgument(&buf, sizeof(buf), 0), ErrorCode::Success);
    ASSERT_EQ(cusimSetupArgument(&value, sizeof(value), sizeof(buf)), ErrorCode::Success);
    ASSERT_EQ(cusimLaunchAsync(handle, "rt_fill", s), ErrorCode::Success);
    EXPECT_EQ(cusimStreamQuery(s), ErrorCode::NotReady);  // queued, not run

    EventId ev = 0;
    ASSERT_EQ(cusimEventCreate(&ev), ErrorCode::Success);
    ASSERT_EQ(cusimEventRecord(ev, s), ErrorCode::Success);
    EXPECT_EQ(cusimEventQuery(ev), ErrorCode::NotReady);
    ASSERT_EQ(cusimEventSynchronize(ev), ErrorCode::Success);
    EXPECT_EQ(cusimEventQuery(ev), ErrorCode::Success);
    EXPECT_EQ(cusimStreamQuery(s), ErrorCode::Success);

    std::vector<int> host(cfg.total_threads(), 0);
    ASSERT_EQ(cusimMemcpyToHostAsync(host.data(), buf, host.size() * sizeof(int), s),
              ErrorCode::Success);
    ASSERT_EQ(cusimStreamSynchronize(s), ErrorCode::Success);
    for (int v : host) EXPECT_EQ(v, 21);

    // Elapsed time between two records around an async H2D.
    EventId e0 = 0, e1 = 0;
    ASSERT_EQ(cusimEventCreate(&e0), ErrorCode::Success);
    ASSERT_EQ(cusimEventCreate(&e1), ErrorCode::Success);
    ASSERT_EQ(cusimEventRecord(e0, s), ErrorCode::Success);
    ASSERT_EQ(cusimMemcpyToDeviceAsync(buf, host.data(), host.size() * sizeof(int), s),
              ErrorCode::Success);
    ASSERT_EQ(cusimEventRecord(e1, s), ErrorCode::Success);
    ASSERT_EQ(cusimStreamSynchronize(s), ErrorCode::Success);
    float ms = -1.0f;
    ASSERT_EQ(cusimEventElapsedTime(&ms, e0, e1), ErrorCode::Success);
    EXPECT_GT(ms, 0.0f);

    EXPECT_EQ(cusimStreamWaitEvent(s, ev), ErrorCode::Success);
    EXPECT_EQ(cusimEventDestroy(ev), ErrorCode::Success);
    EXPECT_EQ(cusimEventDestroy(e0), ErrorCode::Success);
    EXPECT_EQ(cusimEventDestroy(e1), ErrorCode::Success);
    EXPECT_EQ(cusimFree(buf), ErrorCode::Success);
    EXPECT_EQ(cusimStreamDestroy(s), ErrorCode::Success);
    EXPECT_EQ(cusimStreamDestroy(s), ErrorCode::InvalidValue);
    EXPECT_EQ(cusimGetLastError(), ErrorCode::InvalidValue);  // sticky from above
    EXPECT_EQ(cusimGetLastError(), ErrorCode::Success);       // ...and cleared
}

}  // namespace
