// cupp::kernel call-semantics tests, built around the thesis' own examples:
// the `kernel(int i, int& j)` of listings 4.2/4.3, const-reference copy-back
// elision, the transform()/get_device_reference()/dirty() protocol of §4.4,
// and the host/device type transformation of §4.5.
#include <gtest/gtest.h>

#include <cstring>

#include "cupp/cupp.hpp"
#include "cusim/registry.hpp"

namespace {

using cusim::KernelTask;
using cusim::ThreadCtx;

// --- listing 4.2: the CUDA file ---
KernelTask half_kernel(ThreadCtx& ctx, int i, int& j) {
    if (ctx.global_id() == 0) j = i / 2;
    co_return;
}
using HalfKernelT = KernelTask (*)(ThreadCtx&, int, int&);
HalfKernelT get_half_kernel_ptr() { return half_kernel; }

TEST(Kernel, Listing43CallByReference) {
    cupp::device device_hdl;
    int j = 0;
    cupp::kernel f(get_half_kernel_ptr(), cusim::make_dim3(10, 10), cusim::make_dim3(8, 8));
    f(device_hdl, 10, j);
    EXPECT_EQ(j, 5);  // "// j == 5"
}

// --- const references skip the copy-back (§4.3.2) ---
KernelTask sum_kernel(ThreadCtx& ctx, const int& a, const int& b, int& out) {
    if (ctx.global_id() == 0) out = a + b;
    co_return;
}

TEST(Kernel, ConstReferenceSkipsCopyBack) {
    using F = KernelTask (*)(ThreadCtx&, const int&, const int&, int&);
    static_assert(cupp::mutable_reference_count<F>() == 1);

    cupp::device d;
    auto& sim = d.sim();
    int a = 3, b = 4, out = 0;
    cupp::kernel k(static_cast<F>(sum_kernel), cusim::dim3{1}, cusim::dim3{32});

    const auto to_host_before = sim.bytes_to_host();
    k(d, a, b, out);
    const auto to_host = sim.bytes_to_host() - to_host_before;

    EXPECT_EQ(out, 7);
    // Only `out` travels back: one int, not three.
    EXPECT_EQ(to_host, sizeof(int));
}

TEST(Kernel, MutableReferenceCopyBackHappens) {
    using F = KernelTask (*)(ThreadCtx&, const int&, const int&, int&);
    cupp::device d;
    int a = 20, b = 22, out = -1;
    cupp::kernel k(static_cast<F>(sum_kernel), cusim::dim3{1}, cusim::dim3{32});
    k(d, a, b, out);
    EXPECT_EQ(out, 42);
    EXPECT_EQ(a, 20);
    EXPECT_EQ(b, 22);
}

// --- call-by-value leaves the host object untouched (§4.3.1) ---
KernelTask scale_by_value(ThreadCtx& ctx, float x, float& out) {
    if (ctx.global_id() == 0) out = x * 2.0f;
    co_return;
}

TEST(Kernel, CallByValueDoesNotWriteBack) {
    cupp::device d;
    float x = 1.5f, out = 0.0f;
    cupp::kernel k(static_cast<KernelTask (*)(ThreadCtx&, float, float&)>(scale_by_value),
                   cusim::dim3{1}, cusim::dim3{32});
    k(d, x, out);
    EXPECT_FLOAT_EQ(out, 3.0f);
    EXPECT_FLOAT_EQ(x, 1.5f);
}

// --- §4.4/§4.5: a host type with a distinct device type and the full
//     transform/dirty protocol ---
struct DevParticle {
    float x, vx;
    using device_type = DevParticle;
    // host_type declared below; the 1:1 pairing is completed by HostParticle.
};

struct HostParticle {
    using device_type = DevParticle;
    using host_type = HostParticle;

    double x = 0.0;   // host uses doubles; device wants floats
    double vx = 0.0;
    int transforms = 0;
    int dirties = 0;

    DevParticle transform(const cupp::device&) const {
        ++const_cast<HostParticle*>(this)->transforms;
        return DevParticle{static_cast<float>(x), static_cast<float>(vx)};
    }
    cupp::device_reference<DevParticle> get_device_reference(const cupp::device& d) const {
        return cupp::device_reference<DevParticle>(d, transform(d));
    }
    void dirty(cupp::device_reference<DevParticle> ref) {
        ++dirties;
        const DevParticle p = ref.get();
        x = p.x;
        vx = p.vx;
    }
};

KernelTask integrate_kernel(ThreadCtx& ctx, DevParticle& p, const float& dt) {
    if (ctx.global_id() == 0) p.x += p.vx * dt;
    co_return;
}

TEST(Kernel, TypeTransformationRoundTrip) {
    static_assert(cupp::has_device_type<HostParticle>);
    static_assert(std::is_same_v<cupp::device_type_t<HostParticle>, DevParticle>);
    static_assert(std::is_same_v<cupp::host_type_t<DevParticle>, DevParticle>);
    static_assert(cupp::has_transform<HostParticle>);
    static_assert(cupp::has_dirty<HostParticle>);
    static_assert(cupp::has_get_device_reference<HostParticle>);

    cupp::device d;
    HostParticle p;
    p.x = 1.0;
    p.vx = 4.0;
    float dt = 0.5f;
    cupp::kernel k(
        static_cast<KernelTask (*)(ThreadCtx&, DevParticle&, const float&)>(integrate_kernel),
        cusim::dim3{1}, cusim::dim3{32});
    k(d, p, dt);

    EXPECT_DOUBLE_EQ(p.x, 3.0);  // 1 + 4*0.5
    EXPECT_EQ(p.dirties, 1);
    EXPECT_GE(p.transforms, 1);
}

// POD without any of the three members uses the defaults of listing 4.5.
struct PlainPod {
    int a;
    int b;
};

KernelTask pod_kernel(ThreadCtx& ctx, PlainPod in, PlainPod& out) {
    if (ctx.global_id() == 0) {
        out.a = in.a + 1;
        out.b = in.b + 2;
    }
    co_return;
}

TEST(Kernel, PodDefaultsWork) {
    static_assert(!cupp::has_transform<PlainPod>);
    static_assert(!cupp::has_dirty<PlainPod>);
    static_assert(std::is_same_v<cupp::device_type_t<PlainPod>, PlainPod>);

    cupp::device d;
    PlainPod in{10, 20}, out{0, 0};
    cupp::kernel k(static_cast<KernelTask (*)(ThreadCtx&, PlainPod, PlainPod&)>(pod_kernel),
                   cusim::dim3{1}, cusim::dim3{32});
    k(d, in, out);
    EXPECT_EQ(out.a, 11);
    EXPECT_EQ(out.b, 22);
}

// Grid/block dimensions changeable with set-methods (§4.3). The counter
// vector must be passed by reference: "Changes done by the kernel are only
// reflected back, when an argument is passed as a reference" (§6.2.1).
KernelTask count_threads(ThreadCtx& ctx, cupp::deviceT::vector<int>& counter) {
    if (ctx.global_id() == 0) {
        counter.write(ctx, 0,
                      static_cast<int>(ctx.grid_dim().count() * ctx.block_dim().count()));
    }
    co_return;
}

TEST(Kernel, SetMethodsChangeGeometry) {
    cupp::device d;
    cupp::vector<int> counter = {0};
    cupp::kernel k(
        static_cast<KernelTask (*)(ThreadCtx&, cupp::deviceT::vector<int>&)>(count_threads));
    k.set_grid_dim(cusim::dim3{4});
    k.set_block_dim(cusim::dim3{64});
    k(d, counter);
    EXPECT_EQ(static_cast<int>(counter[0]), 4 * 64);
    EXPECT_EQ(k.last_stats().threads, 256u);
}

// cupp::kernel drives the same 3-step protocol as hand-written runtime-API
// code; both must produce identical results and stats.
KernelTask fill_kernel(ThreadCtx& ctx, cupp::deviceT::vector<int>& out, int value) {
    const std::uint64_t gid = ctx.global_id();
    if (gid < out.size()) out.write(ctx, gid, value);
    co_return;
}

TEST(Kernel, MatchesHandWrittenRuntimeApiLaunch) {
    using F = KernelTask (*)(ThreadCtx&, cupp::deviceT::vector<int>&, int);
    cupp::device d;

    // Through CuPP.
    cupp::vector<int> via_cupp(64, 0);
    cupp::kernel k(static_cast<F>(fill_kernel), cusim::dim3{2}, cusim::dim3{32});
    k(d, via_cupp, 7);
    const auto cupp_threads = k.last_stats().threads;

    // Through the raw three-step protocol: stage the handle by hand.
    cupp::vector<int> via_rt(64, 0);
    const auto ref = via_rt.get_device_reference(d);
    const cusim::DeviceAddr addr = ref.addr();
    const int value = 7;
    const auto handle = cusim::rt::register_kernel(
        [](ThreadCtx& ctx, cusim::Device& dev, const std::byte* stack) {
            cusim::DeviceAddr a;
            int v;
            std::memcpy(&a, stack, 8);
            std::memcpy(&v, stack + 8, 4);
            auto& out = *reinterpret_cast<cupp::deviceT::vector<int>*>(dev.memory().raw(a));
            return fill_kernel(ctx, out, v);
        });
    ASSERT_EQ(cusim::rt::cusimConfigureCall(cusim::dim3{2}, cusim::dim3{32}),
              cusim::ErrorCode::Success);
    ASSERT_EQ(cusim::rt::cusimSetupArgument(&addr, 8, 0), cusim::ErrorCode::Success);
    ASSERT_EQ(cusim::rt::cusimSetupArgument(&value, 4, 8), cusim::ErrorCode::Success);
    ASSERT_EQ(cusim::rt::cusimLaunch(handle), cusim::ErrorCode::Success);
    via_rt.dirty(ref);

    EXPECT_EQ(cusim::rt::cusimLastLaunchStats().threads, cupp_threads);
    for (std::uint64_t i = 0; i < 64; ++i) {
        EXPECT_EQ(static_cast<int>(via_cupp[i]), 7);
        EXPECT_EQ(static_cast<int>(via_rt[i]), 7);
    }
}

// Launch failures surface as cupp::kernel_error.
KernelTask bad_kernel(ThreadCtx& ctx, int& x) {
    if (ctx.global_id() == 0) throw std::runtime_error("kernel bug");
    (void)x;
    co_return;
}

TEST(Kernel, LaunchFailureThrowsKernelError) {
    cupp::device d;
    int x = 0;
    cupp::kernel k(static_cast<KernelTask (*)(ThreadCtx&, int&)>(bad_kernel), cusim::dim3{1},
                   cusim::dim3{8});
    EXPECT_THROW(k(d, x), cupp::kernel_error);
}

}  // namespace
