// Tests of the classic OpenSteer behavior repertoire (basic_behaviors.hpp)
// and the demo main-loop driver.
#include <gtest/gtest.h>

#include "cusim/cusim.hpp"
#include "gpusteer/registry.hpp"
#include "steer/basic_behaviors.hpp"
#include "steer/demo.hpp"
#include "steer/steer.hpp"

namespace {

using namespace steer;

Agent make_agent(Vec3 pos, Vec3 fwd, float speed) {
    Agent a;
    a.position = pos;
    a.forward = fwd.normalized();
    a.speed = speed;
    return a;
}

TEST(BasicBehaviors, SeekPointsAtTheTarget) {
    const Agent a = make_agent({0, 0, 0}, {0, 0, 1}, 0.0f);
    const Vec3 s = seek(a, Vec3{10, 0, 0}, 5.0f);
    EXPECT_GT(s.x, 0.0f);
    EXPECT_FLOAT_EQ(s.y, 0.0f);
    EXPECT_FLOAT_EQ(s.length(), 5.0f);  // at rest: desired velocity itself
}

TEST(BasicBehaviors, FleeIsOppositeOfSeek) {
    const Agent a = make_agent({1, 2, 3}, {0, 0, 1}, 2.0f);
    const Vec3 target{9, -4, 0};
    const Vec3 s = seek(a, target, 5.0f);
    const Vec3 f = flee(a, target, 5.0f);
    // seek + flee = -2 * velocity (the two desired velocities cancel).
    const Vec3 sum = s + f;
    const Vec3 expect = -2.0f * a.velocity();
    EXPECT_NEAR(sum.x, expect.x, 1e-5f);
    EXPECT_NEAR(sum.y, expect.y, 1e-5f);
    EXPECT_NEAR(sum.z, expect.z, 1e-5f);
}

TEST(BasicBehaviors, SeekingAgentReachesTheTarget) {
    Agent a = make_agent({0, 0, 0}, {1, 0, 0}, 0.0f);
    AgentParams params;
    const Vec3 target{0, 0, 30};
    float best = 1e9f;
    for (int i = 0; i < 600; ++i) {
        apply_steering(a, seek(a, target, params.max_speed), 1.0f / 60.0f, params);
        best = std::min(best, (target - a.position).length());
    }
    EXPECT_LT(best, 2.0f);
}

TEST(BasicBehaviors, ArrivalSlowsDownNearTheTarget) {
    AgentParams params;
    Agent a = make_agent({0, 0, 0}, {1, 0, 0}, params.max_speed);
    const Vec3 target{40, 0, 0};
    for (int i = 0; i < 1200; ++i) {
        apply_steering(a, arrival(a, target, params.max_speed, 10.0f), 1.0f / 60.0f,
                       params);
    }
    // Arrived and (nearly) stopped.
    EXPECT_LT((target - a.position).length(), 1.0f);
    EXPECT_LT(a.speed, 1.0f);
}

TEST(BasicBehaviors, PursuitLeadsTheQuarry) {
    const Agent hunter = make_agent({0, 0, 0}, {0, 0, 1}, 5.0f);
    const Agent quarry = make_agent({10, 0, 0}, {0, 0, 1}, 5.0f);  // moving +z
    const Vec3 plain = seek(hunter, quarry.position, 9.0f);
    const Vec3 lead = pursue(hunter, quarry, 9.0f);
    // The pursuit vector tilts towards the quarry's direction of travel.
    EXPECT_GT(lead.z, plain.z);
}

TEST(BasicBehaviors, PursuitCatchesFasterThanPlainSeek) {
    AgentParams params;
    params.max_speed = 10.0f;
    auto chase = [&](bool lead) {
        Agent hunter = make_agent({0, 0, 0}, {1, 0, 0}, 0.0f);
        Agent quarry = make_agent({20, 0, 0}, {0, 0, 1}, 6.0f);
        AgentParams quarry_params;
        for (int step = 0; step < 2000; ++step) {
            const Vec3 s = lead ? pursue(hunter, quarry, params.max_speed)
                                : seek(hunter, quarry.position, params.max_speed);
            apply_steering(hunter, s, 1.0f / 60.0f, params);
            apply_steering(quarry, kZero, 1.0f / 60.0f, quarry_params);
            if ((hunter.position - quarry.position).length() < 1.0f) return step;
        }
        return 2000;
    };
    EXPECT_LE(chase(true), chase(false));
}

TEST(BasicBehaviors, EvasionIncreasesDistance) {
    AgentParams params;
    Agent prey = make_agent({0, 0, 0}, {1, 0, 0}, 3.0f);
    const Agent menace = make_agent({5, 0, 0}, {-1, 0, 0}, 3.0f);  // incoming
    const float before = (menace.position - prey.position).length();
    // The prey starts out moving *towards* the menace; give it time to turn.
    for (int i = 0; i < 300; ++i) {
        apply_steering(prey, evade(prey, menace, params.max_speed), 1.0f / 60.0f, params);
    }
    EXPECT_GT((menace.position - prey.position).length(), before);
}

TEST(BasicBehaviors, WanderStaysBoundedAndDeterministic) {
    AgentParams params;
    Agent a = make_agent({0, 0, 0}, {0, 0, 1}, 1.0f);
    WanderState w1, w2;
    Vec3 last1{}, last2{};
    for (int i = 0; i < 500; ++i) {
        const Vec3 s1 = w1.step(a, 4.0f);
        const Vec3 s2 = w2.step(a, 4.0f);
        EXPECT_NEAR(s1.length(), 4.0f, 1e-3f);  // constant strength
        last1 = s1;
        last2 = s2;
    }
    EXPECT_EQ(last1, last2);  // same seed, same walk
}

TEST(Demo, RunsAnyRegisteredPluginAndAggregates) {
    PlugInRegistry registry;
    gpusteer::register_all_plugins(registry);
    Demo demo(registry);

    WorldSpec spec;
    spec.agents = 128;
    ASSERT_FALSE(demo.select("nope", spec));
    ASSERT_TRUE(demo.select("boids-cpu", spec));
    demo.run(5);
    EXPECT_EQ(demo.frames(), 5u);
    EXPECT_GT(demo.update_rate(), 0.0);
    EXPECT_GT(demo.frame_rate(), 0.0);
    EXPECT_LT(demo.frame_rate(), demo.update_rate());  // draw costs something

    // Switching plugins re-opens cleanly and resets the statistics.
    ASSERT_TRUE(demo.select("boids-gpu-v5", spec));
    EXPECT_EQ(demo.frames(), 0u);
    demo.run(3);
    EXPECT_EQ(demo.frames(), 3u);
    demo.close();
    EXPECT_FALSE(demo.has_plugin());
}

TEST(DeviceEvents, BracketKernelTime) {
    cusim::Device dev(cusim::tiny_properties());
    const auto start = dev.record_event();
    auto entry = [](cusim::ThreadCtx& ctx) -> cusim::KernelTask {
        ctx.charge(cusim::Op::FAdd, 120000);
        co_return;
    };
    const auto stats = dev.launch(cusim::LaunchConfig{cusim::dim3{1}, cusim::dim3{32}}, entry);
    const auto stop = dev.record_event();
    EXPECT_NEAR(cusim::Device::elapsed_ms(start, stop), stats.device_seconds * 1e3, 1e-9);
}

}  // namespace
