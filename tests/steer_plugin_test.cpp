// Plugin registry and demo main-loop tests.
#include <gtest/gtest.h>

#include <algorithm>

#include "gpusteer/registry.hpp"
#include "steer/steer.hpp"

namespace {

class PluginRegistryTest : public ::testing::Test {
protected:
    void SetUp() override { gpusteer::register_all_plugins(registry_); }
    steer::PlugInRegistry registry_;
};

TEST_F(PluginRegistryTest, AllCanonicalPluginsRegistered) {
    const auto names = registry_.names();
    for (const char* expect :
         {"boids-cpu", "boids-gpu-v1", "boids-gpu-v2", "boids-gpu-v3", "boids-gpu-v4",
          "boids-gpu-v5", "boids-gpu-v5-db"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expect), names.end()) << expect;
    }
}

TEST_F(PluginRegistryTest, UnknownNameReturnsNull) {
    EXPECT_EQ(registry_.create("no-such-plugin"), nullptr);
}

TEST_F(PluginRegistryTest, CreatedPluginsReportTheirNames) {
    for (const auto& name : registry_.names()) {
        auto plugin = registry_.create(name);
        ASSERT_NE(plugin, nullptr) << name;
        EXPECT_EQ(plugin->name(), name);
    }
}

TEST_F(PluginRegistryTest, EveryPluginRunsTheMainLoop) {
    steer::WorldSpec spec;
    spec.agents = 128;
    for (const auto& name : registry_.names()) {
        auto plugin = registry_.create(name);
        ASSERT_NE(plugin, nullptr);
        plugin->open(spec);
        steer::StageTimes sum{};
        for (int i = 0; i < 3; ++i) sum += plugin->step();
        EXPECT_GT(sum.total(), 0.0) << name;
        EXPECT_EQ(plugin->draw_matrices().size(), spec.agents) << name;
        EXPECT_EQ(plugin->snapshot().size(), spec.agents) << name;
        EXPECT_EQ(plugin->counters().modifies, 3u * spec.agents) << name;
        plugin->close();
    }
}

TEST_F(PluginRegistryTest, AllPluginsAgreeOnTheFlock) {
    // The strongest property of the reproduction: every execution strategy
    // computes the identical flock.
    steer::WorldSpec spec;
    spec.agents = 128;
    auto reference = registry_.create("boids-cpu");
    reference->open(spec);
    for (int i = 0; i < 4; ++i) reference->step();
    const auto expect = reference->snapshot();

    for (const auto& name : registry_.names()) {
        if (name.find("boids-gpu") != 0) continue;  // other scenarios differ by design
        // v6 walks the grid in cell order: the same neighbor *sets* but a
        // different float summation order; its oracle is the CPU grid run
        // (checked in gpusteer_test), not this one.
        if (name.find("v6") != std::string::npos) continue;
        auto plugin = registry_.create(name);
        plugin->open(spec);
        for (int i = 0; i < 4; ++i) plugin->step();
        const auto got = plugin->snapshot();
        ASSERT_EQ(got.size(), expect.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].position, expect[i].position) << name << " agent " << i;
        }
    }
}

TEST(StageTimes, Accumulation) {
    steer::StageTimes a{1.0, 2.0, 0.5, 3.0};
    steer::StageTimes b{0.5, 0.5, 0.5, 0.5};
    a += b;
    EXPECT_DOUBLE_EQ(a.simulation, 1.5);
    EXPECT_DOUBLE_EQ(a.modification, 2.5);
    EXPECT_DOUBLE_EQ(a.transfer, 1.0);
    EXPECT_DOUBLE_EQ(a.draw, 3.5);
    EXPECT_DOUBLE_EQ(a.update(), 5.0);
    EXPECT_DOUBLE_EQ(a.total(), 8.5);
}

}  // namespace
