// cusim graph capture/replay semantics: capture records without executing,
// replay reproduces the eager observables bit-for-bit, sync inside a
// capture invalidates it (CUDA's cudaStreamCaptureStatus rules), replay
// interacts correctly with device reset, fault injection at instantiate
// and launch is atomic, and the runtime-API mirrors round-trip handles.
// The captured-vs-eager determinism sweep lives in cusim_stream_diff_test.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cusim/cusim.hpp"
#include "cusim/faults.hpp"
#include "cusim/memcheck.hpp"

namespace {

using namespace cusim;

KernelTask fill_kernel(ThreadCtx& ctx, DevicePtr<int> out, int value) {
    out.write(ctx, ctx.global_id(), value);
    co_return;
}

KernelTask add_kernel(ThreadCtx& ctx, DevicePtr<int> data, int delta) {
    const int v = data.read(ctx, ctx.global_id());
    data.write(ctx, ctx.global_id(), v + delta);
    co_return;
}

LaunchConfig small_cfg() { return LaunchConfig{dim3{2}, dim3{16}}; }

/// The error code thrown by `fn` (Success when it doesn't throw).
template <typename Fn>
ErrorCode code(Fn&& fn) {
    try {
        fn();
    } catch (const Error& e) {
        return e.code();
    }
    return ErrorCode::Success;
}

// --- capture mechanics -----------------------------------------------------

TEST(GraphCapture, RecordsWithoutExecuting) {
    Device dev(tiny_properties());
    const LaunchConfig cfg = small_cfg();
    auto buf = dev.malloc_n<int>(cfg.total_threads());
    std::vector<int> host(cfg.total_threads(), 3);
    const StreamId s = dev.stream_create();

    EXPECT_FALSE(dev.capturing());
    dev.stream_begin_capture(s);
    EXPECT_TRUE(dev.capturing());

    const std::uint64_t launches_before = dev.launches();
    dev.memcpy_to_device_async(buf.addr(), host.data(), host.size() * sizeof(int), s);
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return add_kernel(ctx, buf, 4); },
                     "add", s);
    // Recorded, not enqueued: nothing pending, nothing executed.
    EXPECT_EQ(dev.launches(), launches_before);
    EXPECT_EQ(dev.pending_async_ops(), 0u);
    EXPECT_TRUE(dev.stream_query(s));  // the captured stream stays idle

    Graph g = dev.stream_end_capture(s);
    EXPECT_FALSE(dev.capturing());
    EXPECT_TRUE(g.valid());
    EXPECT_EQ(g.node_count(), 2u);

    // Ending the capture does not execute anything either.
    dev.synchronize();
    EXPECT_EQ(dev.launches(), launches_before);
}

TEST(GraphCapture, EmptyGraphInstantiatesAndLaunchesAsNoOp) {
    Device dev(tiny_properties());
    const StreamId s = dev.stream_create();
    dev.stream_begin_capture(s);
    Graph g = dev.stream_end_capture(s);
    EXPECT_EQ(g.node_count(), 0u);

    GraphExec exec = dev.graph_instantiate(g);
    const std::uint64_t launches_before = dev.launches();
    dev.graph_launch(exec);
    dev.synchronize();
    EXPECT_EQ(dev.launches(), launches_before);
}

TEST(GraphCapture, DefaultConstructedHandlesAreInvalid) {
    Device dev(tiny_properties());
    Graph g;
    GraphExec e;
    EXPECT_FALSE(g.valid());
    EXPECT_FALSE(e.valid());
    EXPECT_EQ(g.node_count(), 0u);
    EXPECT_EQ(code([&] { (void)dev.graph_instantiate(g); }), ErrorCode::InvalidValue);
    EXPECT_EQ(code([&] { dev.graph_launch(e); }), ErrorCode::InvalidValue);
}

// --- replay correctness ----------------------------------------------------

TEST(GraphReplay, MatchesEagerResults) {
    const LaunchConfig cfg = small_cfg();
    const std::size_t n = cfg.total_threads();
    std::vector<int> seed(n, 10);

    // Eager reference: upload, k1, k2, download.
    std::vector<int> eager(n, 0);
    std::uint64_t eager_launches = 0;
    {
        Device dev(tiny_properties());
        auto buf = dev.malloc_n<int>(n);
        const StreamId s = dev.stream_create();
        dev.memcpy_to_device_async(buf.addr(), seed.data(), n * sizeof(int), s);
        dev.launch_async(cfg, [&](ThreadCtx& ctx) { return add_kernel(ctx, buf, 5); },
                         "add5", s);
        dev.launch_async(cfg, [&](ThreadCtx& ctx) { return add_kernel(ctx, buf, 7); },
                         "add7", s);
        dev.memcpy_to_host_async(eager.data(), buf.addr(), n * sizeof(int), s);
        dev.stream_synchronize(s);
        eager_launches = dev.launches();
    }

    // Captured: identical enqueues recorded once, replayed once.
    std::vector<int> replayed(n, 0);
    Device dev(tiny_properties());
    auto buf = dev.malloc_n<int>(n);
    const StreamId s = dev.stream_create();
    dev.stream_begin_capture(s);
    dev.memcpy_to_device_async(buf.addr(), seed.data(), n * sizeof(int), s);
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return add_kernel(ctx, buf, 5); },
                     "add5", s);
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return add_kernel(ctx, buf, 7); },
                     "add7", s);
    dev.memcpy_to_host_async(replayed.data(), buf.addr(), n * sizeof(int), s);
    Graph g = dev.stream_end_capture(s);
    GraphExec exec = dev.graph_instantiate(g);
    dev.graph_launch(exec);
    dev.stream_synchronize(s);

    EXPECT_EQ(replayed, eager);
    EXPECT_EQ(dev.launches(), eager_launches);

    // Launch history parity: same kernels, same grids, same order.
    const auto recent = dev.recent_launches();
    ASSERT_GE(recent.size(), 2u);
    EXPECT_EQ(recent[recent.size() - 2].kernel_name, "add5");
    EXPECT_EQ(recent[recent.size() - 1].kernel_name, "add7");
}

TEST(GraphReplay, RepeatedLaunchesAccumulate) {
    Device dev(tiny_properties());
    const LaunchConfig cfg = small_cfg();
    const std::size_t n = cfg.total_threads();
    auto buf = dev.malloc_n<int>(n);
    std::vector<int> zero(n, 0);
    dev.upload(buf, std::span<const int>(zero));

    const StreamId s = dev.stream_create();
    dev.stream_begin_capture(s);
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return add_kernel(ctx, buf, 2); },
                     "add2", s);
    Graph g = dev.stream_end_capture(s);
    GraphExec exec = dev.graph_instantiate(g);
    for (int i = 0; i < 5; ++i) dev.graph_launch(exec);
    dev.stream_synchronize(s);

    std::vector<int> out(n, -1);
    dev.download(std::span<int>(out), buf);
    EXPECT_EQ(out, std::vector<int>(n, 10));
}

TEST(GraphReplay, MultiStreamCaptureViaEventEdges) {
    // Origin-mode propagation: a second stream joins the capture by
    // waiting on an event recorded inside it (CUDA's capture-propagation
    // rule); a reverse edge merges it back before the capture ends.
    Device dev(tiny_properties());
    const LaunchConfig cfg = small_cfg();
    const std::size_t n = cfg.total_threads();
    auto a = dev.malloc_n<int>(n);
    auto b = dev.malloc_n<int>(n);
    const StreamId s0 = dev.stream_create();
    const StreamId s1 = dev.stream_create();
    const EventId fork = dev.event_create();
    const EventId join = dev.event_create();

    dev.stream_begin_capture(s0);
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return fill_kernel(ctx, a, 1); },
                     "fill_a", s0);
    dev.event_record(fork, s0);
    dev.stream_wait_event(s1, fork);  // s1 joins the capture here
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return fill_kernel(ctx, b, 2); },
                     "fill_b", s1);
    dev.event_record(join, s1);
    dev.stream_wait_event(s0, join);  // merge back into the origin
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return add_kernel(ctx, a, 10); },
                     "bump_a", s0);
    Graph g = dev.stream_end_capture(s0);
    EXPECT_EQ(g.node_count(), 7u);

    GraphExec exec = dev.graph_instantiate(g);
    dev.graph_launch(exec);
    dev.synchronize();

    std::vector<int> ha(n, 0), hb(n, 0);
    dev.download(std::span<int>(ha), a);
    dev.download(std::span<int>(hb), b);
    EXPECT_EQ(ha, std::vector<int>(n, 11));
    EXPECT_EQ(hb, std::vector<int>(n, 2));
}

TEST(GraphReplay, AllStreamsModeCapturesDisjointStreams) {
    // Two streams with no event edge between them: Origin mode would not
    // capture s1's work; AllStreams captures the whole device.
    Device dev(tiny_properties());
    const LaunchConfig cfg = small_cfg();
    const std::size_t n = cfg.total_threads();
    auto a = dev.malloc_n<int>(n);
    auto b = dev.malloc_n<int>(n);
    const StreamId s0 = dev.stream_create();
    const StreamId s1 = dev.stream_create();

    dev.stream_begin_capture(s0, CaptureMode::AllStreams);
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return fill_kernel(ctx, a, 5); },
                     "fill_a", s0);
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return fill_kernel(ctx, b, 6); },
                     "fill_b", s1);
    Graph g = dev.stream_end_capture(s0);
    EXPECT_EQ(g.node_count(), 2u);

    GraphExec exec = dev.graph_instantiate(g);
    dev.graph_launch(exec);
    dev.synchronize();

    std::vector<int> ha(n, 0), hb(n, 0);
    dev.download(std::span<int>(ha), a);
    dev.download(std::span<int>(hb), b);
    EXPECT_EQ(ha, std::vector<int>(n, 5));
    EXPECT_EQ(hb, std::vector<int>(n, 6));
}

TEST(GraphReplay, WaitOnPreCaptureEventIsCapturedAsNoOp) {
    // An event recorded *before* the capture carries no intra-graph edge;
    // the wait is recorded so replay keeps the op sequence, but it orders
    // nothing (the pre-capture record is long gone at replay time).
    Device dev(tiny_properties());
    const LaunchConfig cfg = small_cfg();
    auto buf = dev.malloc_n<int>(cfg.total_threads());
    const StreamId s = dev.stream_create();
    const EventId ev = dev.event_create();
    dev.event_record(ev, s);
    dev.stream_synchronize(s);

    dev.stream_begin_capture(s);
    dev.stream_wait_event(s, ev);
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 9); },
                     "fill", s);
    Graph g = dev.stream_end_capture(s);
    EXPECT_EQ(g.node_count(), 2u);

    GraphExec exec = dev.graph_instantiate(g);
    dev.graph_launch(exec);
    dev.stream_synchronize(s);
    std::vector<int> out(cfg.total_threads(), 0);
    dev.download(std::span<int>(out), buf);
    EXPECT_EQ(out, std::vector<int>(cfg.total_threads(), 9));
}

TEST(GraphReplay, ReinstantiationsAreIndependent) {
    Device dev(tiny_properties());
    const LaunchConfig cfg = small_cfg();
    const std::size_t n = cfg.total_threads();
    auto buf = dev.malloc_n<int>(n);
    std::vector<int> zero(n, 0);
    dev.upload(buf, std::span<const int>(zero));

    const StreamId s = dev.stream_create();
    dev.stream_begin_capture(s);
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return add_kernel(ctx, buf, 1); },
                     "inc", s);
    Graph g = dev.stream_end_capture(s);

    GraphExec e1 = dev.graph_instantiate(g);
    GraphExec e2 = dev.graph_instantiate(g);
    dev.graph_launch(e1);
    dev.graph_launch(e2);
    dev.graph_launch(e1);
    dev.stream_synchronize(s);

    std::vector<int> out(n, -1);
    dev.download(std::span<int>(out), buf);
    EXPECT_EQ(out, std::vector<int>(n, 3));
}

// --- capture invalidation --------------------------------------------------

TEST(GraphInvalidation, DeviceSynchronizeDuringCapture) {
    Device dev(tiny_properties());
    const StreamId s = dev.stream_create();
    dev.stream_begin_capture(s);
    EXPECT_EQ(code([&] { dev.synchronize(); }), ErrorCode::StreamCaptureInvalid);
    // The capture is pinned broken until it is ended; ending reports why.
    EXPECT_TRUE(dev.capturing());
    EXPECT_EQ(code([&] { (void)dev.stream_end_capture(s); }),
              ErrorCode::StreamCaptureInvalid);
    EXPECT_FALSE(dev.capturing());
    // The device is fully usable afterwards.
    dev.synchronize();
    const LaunchConfig cfg = small_cfg();
    auto buf = dev.malloc_n<int>(cfg.total_threads());
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 1); },
                     "fill", s);
    dev.stream_synchronize(s);
}

TEST(GraphInvalidation, StreamSynchronizeOfCapturedStream) {
    Device dev(tiny_properties());
    const StreamId s = dev.stream_create();
    dev.stream_begin_capture(s);
    EXPECT_EQ(code([&] { dev.stream_synchronize(s); }),
              ErrorCode::StreamCaptureInvalid);
    EXPECT_EQ(code([&] { (void)dev.stream_end_capture(s); }),
              ErrorCode::StreamCaptureInvalid);
}

TEST(GraphInvalidation, EventSynchronizeDuringCapture) {
    Device dev(tiny_properties());
    const StreamId s = dev.stream_create();
    const EventId ev = dev.event_create();
    dev.event_record(ev, s);
    dev.stream_synchronize(s);
    dev.stream_begin_capture(s);
    EXPECT_EQ(code([&] { dev.event_synchronize(ev); }),
              ErrorCode::StreamCaptureInvalid);
    EXPECT_EQ(code([&] { (void)dev.stream_end_capture(s); }),
              ErrorCode::StreamCaptureInvalid);
}

TEST(GraphInvalidation, StreamDestroyDuringCapture) {
    Device dev(tiny_properties());
    const StreamId s = dev.stream_create();
    const StreamId other = dev.stream_create();
    dev.stream_begin_capture(s);
    EXPECT_EQ(code([&] { dev.stream_destroy(other); }),
              ErrorCode::StreamCaptureInvalid);
    EXPECT_EQ(code([&] { (void)dev.stream_end_capture(s); }),
              ErrorCode::StreamCaptureInvalid);
}

TEST(GraphInvalidation, GraphLaunchDuringCapture) {
    Device dev(tiny_properties());
    const StreamId s = dev.stream_create();
    dev.stream_begin_capture(s);
    Graph g = dev.stream_end_capture(s);
    GraphExec exec = dev.graph_instantiate(g);

    dev.stream_begin_capture(s);
    EXPECT_EQ(code([&] { dev.graph_launch(exec); }),
              ErrorCode::StreamCaptureInvalid);
    EXPECT_EQ(code([&] { (void)dev.stream_end_capture(s); }),
              ErrorCode::StreamCaptureInvalid);
}

TEST(GraphInvalidation, DeviceResetAbandonsCapture) {
    Device dev(tiny_properties());
    const StreamId s = dev.stream_create();
    dev.stream_begin_capture(s);
    dev.poison();
    dev.reset_device();
    // The reset abandoned the capture outright (no sticky broken state).
    EXPECT_FALSE(dev.capturing());
    EXPECT_EQ(code([&] { (void)dev.stream_end_capture(s); }),
              ErrorCode::StreamCaptureInvalid);
}

// --- API misuse ------------------------------------------------------------

TEST(GraphApi, BeginEndMisuse) {
    Device dev(tiny_properties());
    const StreamId s = dev.stream_create();
    const StreamId other = dev.stream_create();

    // End without begin; begin on the default / an unknown stream.
    EXPECT_EQ(code([&] { (void)dev.stream_end_capture(s); }),
              ErrorCode::StreamCaptureInvalid);
    EXPECT_EQ(code([&] { dev.stream_begin_capture(kDefaultStream); }),
              ErrorCode::InvalidValue);
    EXPECT_EQ(code([&] { dev.stream_begin_capture(404); }), ErrorCode::InvalidValue);

    // Nested begin; end on the wrong origin.
    dev.stream_begin_capture(s);
    EXPECT_EQ(code([&] { dev.stream_begin_capture(other); }),
              ErrorCode::StreamCaptureInvalid);
    EXPECT_EQ(code([&] { (void)dev.stream_end_capture(other); }),
              ErrorCode::InvalidValue);
    Graph g = dev.stream_end_capture(s);
    EXPECT_TRUE(g.valid());
}

TEST(GraphApi, ReplayAfterDeviceReset) {
    // reset_device() abandons queued work but keeps stream handles and
    // allocations live (the simulator's recovery contract) — so an
    // instantiated graph survives a poison/reset cycle and replays
    // correctly against the recovered device.
    Device dev(tiny_properties());
    const LaunchConfig cfg = small_cfg();
    const std::size_t n = cfg.total_threads();
    auto buf = dev.malloc_n<int>(n);
    const StreamId s = dev.stream_create();
    dev.stream_begin_capture(s);
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 1); },
                     "fill", s);
    Graph g = dev.stream_end_capture(s);
    GraphExec exec = dev.graph_instantiate(g);

    dev.poison();
    EXPECT_EQ(code([&] { dev.graph_launch(exec); }), ErrorCode::DeviceLost);
    EXPECT_EQ(dev.pending_async_ops(), 0u);  // the refused launch enqueued nothing
    dev.reset_device();

    dev.graph_launch(exec);
    dev.stream_synchronize(s);
    std::vector<int> out(n, 0);
    dev.download(std::span<int>(out), buf);
    EXPECT_EQ(out, std::vector<int>(n, 1));

    // Re-instantiating from the immutable graph also works post-reset.
    GraphExec exec2 = dev.graph_instantiate(g);
    dev.graph_launch(exec2);
    dev.stream_synchronize(s);
}

// --- fault injection -------------------------------------------------------

TEST(GraphFaults, InstantiateFaultIsAtomicAndRetryable) {
    Device dev(tiny_properties());
    const LaunchConfig cfg = small_cfg();
    auto buf = dev.malloc_n<int>(cfg.total_threads());
    const StreamId s = dev.stream_create();
    dev.stream_begin_capture(s);
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return fill_kernel(ctx, buf, 3); },
                     "fill", s);
    Graph g = dev.stream_end_capture(s);

    faults::Rule rule;
    rule.site = faults::Site::Launch;
    rule.code = ErrorCode::LaunchFailure;
    rule.nth = 1;
    rule.filter = "graph instantiate";
    faults::configure({rule}, /*seed=*/1);

    EXPECT_EQ(code([&] { (void)dev.graph_instantiate(g); }),
              ErrorCode::LaunchFailure);
    EXPECT_EQ(dev.pending_async_ops(), 0u);  // nothing half-enqueued
    EXPECT_EQ(faults::injections(), 1u);

    // The fault was transient: the same call succeeds on retry.
    GraphExec exec = dev.graph_instantiate(g);
    EXPECT_TRUE(exec.valid());
    faults::reset();
    dev.graph_launch(exec);
    dev.stream_synchronize(s);
}

TEST(GraphFaults, GraphLaunchFaultIsAtomicAndRetryable) {
    Device dev(tiny_properties());
    const LaunchConfig cfg = small_cfg();
    const std::size_t n = cfg.total_threads();
    auto buf = dev.malloc_n<int>(n);
    std::vector<int> zero(n, 0);
    dev.upload(buf, std::span<const int>(zero));
    const StreamId s = dev.stream_create();
    dev.stream_begin_capture(s);
    dev.launch_async(cfg, [&](ThreadCtx& ctx) { return add_kernel(ctx, buf, 1); },
                     "inc", s);
    Graph g = dev.stream_end_capture(s);
    GraphExec exec = dev.graph_instantiate(g);

    faults::Rule rule;
    rule.site = faults::Site::Launch;
    rule.code = ErrorCode::LaunchFailure;
    rule.nth = 1;
    rule.filter = "graph launch";
    faults::configure({rule}, /*seed=*/1);

    EXPECT_EQ(code([&] { dev.graph_launch(exec); }), ErrorCode::LaunchFailure);
    // All-or-nothing: the failed launch enqueued nothing.
    EXPECT_EQ(dev.pending_async_ops(), 0u);
    faults::reset();

    dev.graph_launch(exec);
    dev.stream_synchronize(s);
    std::vector<int> out(n, -1);
    dev.download(std::span<int>(out), buf);
    // Exactly one increment: the faulted launch contributed nothing.
    EXPECT_EQ(out, std::vector<int>(n, 1));
}

// --- memcheck parity -------------------------------------------------------

TEST(GraphMemcheck, ReplayIsAsCleanAsEager) {
    memcheck::enable();
    memcheck::set_strict(false);
    memcheck::reset();

    const LaunchConfig cfg = small_cfg();
    const std::size_t n = cfg.total_threads();
    std::vector<int> seed(n, 1);
    {
        Device dev(tiny_properties());
        auto buf = dev.malloc_n<int>(n);
        std::vector<int> host(n, 0);
        const StreamId s = dev.stream_create();
        dev.stream_begin_capture(s);
        dev.memcpy_to_device_async(buf.addr(), seed.data(), n * sizeof(int), s);
        dev.launch_async(cfg,
                         [&](ThreadCtx& ctx) { return add_kernel(ctx, buf, 1); },
                         "inc", s);
        dev.memcpy_to_host_async(host.data(), buf.addr(), n * sizeof(int), s);
        Graph g = dev.stream_end_capture(s);
        GraphExec exec = dev.graph_instantiate(g);
        dev.graph_launch(exec);
        dev.stream_synchronize(s);
        EXPECT_EQ(host, std::vector<int>(n, 2));
        dev.free(buf);
    }
    // The replayed D2H registered its shadow host-write exactly like an
    // eager enqueue: a clean run stays clean (and the buffer was freed, so
    // no leak either).
    EXPECT_TRUE(memcheck::violations().empty()) << memcheck::report_text();

    memcheck::disable();
    memcheck::reset();
}

TEST(GraphMemcheck, ReplayedHostRaceIsStillDetected) {
    memcheck::enable();
    memcheck::set_strict(false);
    memcheck::reset();
    {
        Device dev(tiny_properties());
        const std::size_t n = 64;
        auto buf = dev.malloc_n<int>(n);
        std::vector<int> seed(n, 1);
        dev.upload(buf, std::span<const int>(seed));
        std::vector<int> host(n, 0);
        const StreamId s = dev.stream_create();
        dev.stream_begin_capture(s);
        dev.memcpy_to_host_async(host.data(), buf.addr(), n * sizeof(int), s);
        Graph g = dev.stream_end_capture(s);
        GraphExec exec = dev.graph_instantiate(g);
        dev.graph_launch(exec);
        // Reading the landing zone before the covering sync is the async
        // host-race memcheck catches for eager enqueues — replays too.
        dev.note_host_read(host.data(), n * sizeof(int));
        dev.stream_synchronize(s);
    }
    const auto all = memcheck::violations();
    EXPECT_FALSE(all.empty());
    memcheck::disable();
    memcheck::reset();
}

// --- runtime-API mirrors ---------------------------------------------------

TEST(GraphRuntimeApi, HandlesRoundTrip) {
    Registry::instance().reset();
    ASSERT_EQ(rt::cusimSetDevice(0), ErrorCode::Success);

    StreamId s = 0;
    ASSERT_EQ(rt::cusimStreamCreate(&s), ErrorCode::Success);

    ASSERT_EQ(rt::cusimStreamBeginCapture(s), ErrorCode::Success);
    rt::GraphHandle graph = 0;
    ASSERT_EQ(rt::cusimStreamEndCapture(s, &graph), ErrorCode::Success);
    EXPECT_NE(graph, 0u);

    rt::GraphExecHandle exec = 0;
    ASSERT_EQ(rt::cusimGraphInstantiate(&exec, graph), ErrorCode::Success);
    EXPECT_NE(exec, 0u);
    EXPECT_EQ(rt::cusimGraphLaunch(exec), ErrorCode::Success);

    EXPECT_EQ(rt::cusimGraphDestroy(graph), ErrorCode::Success);
    EXPECT_EQ(rt::cusimGraphDestroy(graph), ErrorCode::InvalidValue);
    EXPECT_EQ(rt::cusimGraphExecDestroy(exec), ErrorCode::Success);
    EXPECT_EQ(rt::cusimGraphExecDestroy(exec), ErrorCode::InvalidValue);

    // Misuse surfaces as error codes, never exceptions, through the C API.
    rt::GraphHandle none = 0;
    EXPECT_EQ(rt::cusimStreamEndCapture(s, &none), ErrorCode::StreamCaptureInvalid);
    EXPECT_EQ(rt::cusimGraphInstantiate(&exec, 404), ErrorCode::InvalidValue);
    EXPECT_EQ(rt::cusimGraphLaunch(404), ErrorCode::InvalidValue);

    EXPECT_EQ(rt::cusimStreamDestroy(s), ErrorCode::Success);
}

}  // namespace
