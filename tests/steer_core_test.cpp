// Steering-library unit tests: Vec3 math, agent kinematics, world setup,
// neighbor search against a brute-force oracle, and the three behaviors.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "steer/steer.hpp"

namespace {

using namespace steer;

TEST(Vec3, Arithmetic) {
    const Vec3 a{1, 2, 3}, b{4, 5, 6};
    EXPECT_EQ(a + b, Vec3(5, 7, 9));
    EXPECT_EQ(b - a, Vec3(3, 3, 3));
    EXPECT_EQ(a * 2.0f, Vec3(2, 4, 6));
    EXPECT_EQ(2.0f * a, a * 2.0f);
    EXPECT_FLOAT_EQ(a.dot(b), 32.0f);
    EXPECT_EQ(Vec3(1, 0, 0).cross(Vec3(0, 1, 0)), Vec3(0, 0, 1));
    EXPECT_FLOAT_EQ(Vec3(3, 4, 0).length(), 5.0f);
    EXPECT_FLOAT_EQ(Vec3(3, 4, 0).length_squared(), 25.0f);
}

TEST(Vec3, NormalizeAndTruncate) {
    EXPECT_FLOAT_EQ(Vec3(10, 0, 0).normalized().length(), 1.0f);
    EXPECT_EQ(kZero.normalized(), kZero);  // zero-safe
    EXPECT_EQ(Vec3(1, 0, 0).truncated(5.0f), Vec3(1, 0, 0));
    EXPECT_FLOAT_EQ(Vec3(10, 0, 0).truncated(5.0f).length(), 5.0f);
}

TEST(Agent, ApplySteeringRespectsLimits) {
    Agent a;
    a.forward = Vec3{0, 0, 1};
    a.speed = 1.0f;
    AgentParams p;
    p.max_force = 2.0f;
    p.max_speed = 3.0f;
    // A huge steering force is clipped to max_force, speed to max_speed.
    for (int i = 0; i < 100; ++i) apply_steering(a, Vec3{1000, 0, 0}, 0.1f, p);
    EXPECT_LE(a.speed, p.max_speed + 1e-4f);
    EXPECT_NEAR(a.forward.length(), 1.0f, 1e-5f);
}

TEST(Agent, ZeroSteeringKeepsHeading) {
    Agent a;
    a.forward = Vec3{0, 0, 1};
    a.speed = 2.0f;
    const Vec3 before = a.position;
    apply_steering(a, kZero, 0.5f, AgentParams{});
    EXPECT_EQ(a.forward, Vec3(0, 0, 1));
    EXPECT_FLOAT_EQ((a.position - before).length(), 1.0f);  // 2.0 * 0.5
}

TEST(Agent, WorldWrapDiametricOpposite) {
    Agent a;
    a.position = Vec3{60, 0, 0};
    wrap_world(a, 50.0f);
    EXPECT_NEAR(a.position.x, -50.0f, 1e-4f);
    // Inside the world: untouched.
    Agent b;
    b.position = Vec3{10, 10, 10};
    wrap_world(b, 50.0f);
    EXPECT_EQ(b.position, Vec3(10, 10, 10));
}

TEST(World, DeterministicSetupInsideSphere) {
    WorldSpec spec;
    spec.agents = 500;
    const auto flock1 = make_flock(spec);
    const auto flock2 = make_flock(spec);
    ASSERT_EQ(flock1.size(), 500u);
    for (std::size_t i = 0; i < flock1.size(); ++i) {
        EXPECT_EQ(flock1[i].position, flock2[i].position);
        EXPECT_LE(flock1[i].position.length(), spec.world_radius + 1e-3f);
        EXPECT_NEAR(flock1[i].forward.length(), 1.0f, 1e-5f);
    }
    spec.seed = 7;
    const auto flock3 = make_flock(spec);
    EXPECT_NE(flock1[0].position, flock3[0].position);
}

// Brute-force oracle: sort all in-radius agents by distance, take first 7.
std::vector<std::uint32_t> oracle_neighbors(std::uint32_t me,
                                            const std::vector<Vec3>& positions, float radius,
                                            std::uint32_t k) {
    std::vector<std::pair<float, std::uint32_t>> all;
    for (std::uint32_t i = 0; i < positions.size(); ++i) {
        if (i == me) continue;
        const float d2 = (positions[i] - positions[me]).length_squared();
        if (d2 < radius * radius) all.emplace_back(d2, i);
    }
    std::sort(all.begin(), all.end());
    std::vector<std::uint32_t> out;
    for (std::uint32_t i = 0; i < std::min<std::size_t>(k, all.size()); ++i) {
        out.push_back(all[i].second);
    }
    std::sort(out.begin(), out.end());
    return out;
}

class NeighborSearchProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(NeighborSearchProperty, MatchesBruteForceOracle) {
    WorldSpec spec;
    spec.agents = GetParam();
    spec.seed = 42 + GetParam();
    const auto flock = make_flock(spec);
    std::vector<Vec3> positions(flock.size());
    for (std::size_t i = 0; i < flock.size(); ++i) positions[i] = flock[i].position;

    for (std::uint32_t me = 0; me < spec.agents; me += 7) {
        const NeighborList list =
            find_neighbors(me, positions, spec.search_radius, spec.max_neighbors);
        std::vector<std::uint32_t> got(list.index.begin(), list.index.begin() + list.count);
        std::sort(got.begin(), got.end());
        const auto want =
            oracle_neighbors(me, positions, spec.search_radius, spec.max_neighbors);
        EXPECT_EQ(got, want) << "agent " << me << " of " << spec.agents;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, NeighborSearchProperty,
                         ::testing::Values(1u, 8u, 64u, 257u, 1024u));

TEST(NeighborSearch, SelfIsNeverANeighbor) {
    std::vector<Vec3> positions = {{0, 0, 0}, {0.1f, 0, 0}};
    const auto list = find_neighbors(0, positions, 10.0f, 7);
    ASSERT_EQ(list.count, 1u);
    EXPECT_EQ(list.index[0], 1u);
}

TEST(NeighborSearch, RadiusIsExclusive) {
    std::vector<Vec3> positions = {{0, 0, 0}, {3.0f, 0, 0}};
    EXPECT_EQ(find_neighbors(0, positions, 3.0f, 7).count, 0u);
    EXPECT_EQ(find_neighbors(0, positions, 3.01f, 7).count, 1u);
}

TEST(NeighborSearch, CountsFeedCostModel) {
    std::vector<Vec3> positions(100, Vec3{0, 0, 0});
    SearchCounters c;
    (void)find_neighbors(0, positions, 1.0f, 7, &c);
    EXPECT_EQ(c.pairs_examined, 100u);
    EXPECT_EQ(c.in_radius, 99u);  // everyone shares the origin except me
}

TEST(Behaviors, SeparationPushesAway) {
    std::vector<Vec3> positions = {{0, 0, 0}, {1, 0, 0}};
    NeighborList list;
    list.index[0] = 1;
    list.count = 1;
    const Vec3 s = separation(positions[0], list, positions);
    EXPECT_LT(s.x, 0.0f);  // pushed away from the neighbor at +x
    EXPECT_FLOAT_EQ(s.y, 0.0f);
}

TEST(Behaviors, SeparationFalloffIsOneOverDistance) {
    std::vector<Vec3> near = {{0, 0, 0}, {1, 0, 0}};
    std::vector<Vec3> far = {{0, 0, 0}, {4, 0, 0}};
    NeighborList list;
    list.index[0] = 1;
    list.count = 1;
    const float near_mag = separation(near[0], list, near).length();
    const float far_mag = separation(far[0], list, far).length();
    EXPECT_NEAR(near_mag / far_mag, 4.0f, 1e-4f);  // 1/d falloff
}

TEST(Behaviors, CohesionPullsTowardsNeighbors) {
    std::vector<Vec3> positions = {{0, 0, 0}, {2, 0, 0}, {0, 2, 0}};
    NeighborList list;
    list.index[0] = 1;
    list.index[1] = 2;
    list.count = 2;
    const Vec3 c = cohesion(positions[0], list, positions);
    EXPECT_EQ(c, Vec3(2, 2, 0));
}

TEST(Behaviors, AlignmentMatchesHeadings) {
    std::vector<Vec3> forwards = {{0, 0, 1}, {1, 0, 0}, {1, 0, 0}};
    NeighborList list;
    list.index[0] = 1;
    list.index[1] = 2;
    list.count = 2;
    const Vec3 a = alignment(forwards[0], list, forwards);
    // sum of neighbor headings (2,0,0) minus 2 * my heading (0,0,2).
    EXPECT_EQ(a, Vec3(2, 0, -2));
}

TEST(Behaviors, FlockingIsWeightedSumOfNormalizedParts) {
    std::vector<Vec3> positions = {{0, 0, 0}, {1, 0, 0}};
    std::vector<Vec3> forwards = {{0, 0, 1}, {0, 1, 0}};
    NeighborList list;
    list.index[0] = 1;
    list.count = 1;
    const FlockingWeights w{2.0f, 3.0f, 5.0f};
    const Vec3 f = flocking(positions[0], forwards[0], list, positions, forwards, w);
    const Vec3 expect = 2.0f * separation(positions[0], list, positions).normalized() +
                        3.0f * alignment(forwards[0], list, forwards).normalized() +
                        5.0f * cohesion(positions[0], list, positions).normalized();
    EXPECT_EQ(f, expect);
}

TEST(Behaviors, NoNeighborsMeansNoSteering) {
    std::vector<Vec3> positions = {{0, 0, 0}};
    std::vector<Vec3> forwards = {{0, 0, 1}};
    NeighborList empty;
    const FlockingWeights w{1, 1, 1};
    EXPECT_EQ(flocking(positions[0], forwards[0], empty, positions, forwards, w), kZero);
}

TEST(DrawStage, MatrixEncodesPositionAndHeading) {
    const Mat4 m = agent_matrix(Vec3{1, 2, 3}, Vec3{0, 0, 1});
    EXPECT_FLOAT_EQ(m.m[12], 1.0f);
    EXPECT_FLOAT_EQ(m.m[13], 2.0f);
    EXPECT_FLOAT_EQ(m.m[14], 3.0f);
    EXPECT_FLOAT_EQ(m.m[15], 1.0f);
    EXPECT_FLOAT_EQ(m.m[10], 1.0f);  // forward column = +z
    // Rotation part is orthonormal.
    const Vec3 side{m.m[0], m.m[1], m.m[2]};
    const Vec3 up{m.m[4], m.m[5], m.m[6]};
    const Vec3 fwd{m.m[8], m.m[9], m.m[10]};
    EXPECT_NEAR(side.dot(up), 0.0f, 1e-5f);
    EXPECT_NEAR(side.dot(fwd), 0.0f, 1e-5f);
    EXPECT_NEAR(up.length(), 1.0f, 1e-5f);
}

TEST(DrawStage, DegenerateHeadingStillOrthonormal) {
    const Mat4 m = agent_matrix(kZero, Vec3{0, 1, 0});  // parallel to world-up
    const Vec3 side{m.m[0], m.m[1], m.m[2]};
    EXPECT_NEAR(side.length(), 1.0f, 1e-5f);
}

TEST(ThinkFrequency, OneTenthOfAgentsPerStep) {
    // §5.3: "In one simulation time step only 1/10th of the agents execute
    // the simulation substage."
    constexpr std::uint32_t kAgents = 1000, kPeriod = 10;
    for (std::uint64_t step = 0; step < kPeriod; ++step) {
        std::uint32_t thinking = 0;
        for (std::uint32_t i = 0; i < kAgents; ++i) {
            if (thinks_this_step(i, step, kPeriod)) ++thinking;
        }
        EXPECT_EQ(thinking, kAgents / kPeriod);
    }
    // Every agent thinks exactly once per period.
    for (std::uint32_t i = 0; i < kAgents; i += 97) {
        std::uint32_t thinks = 0;
        for (std::uint64_t step = 0; step < kPeriod; ++step) {
            if (thinks_this_step(i, step, kPeriod)) ++thinks;
        }
        EXPECT_EQ(thinks, 1u);
    }
}

TEST(CpuPlugin, RunsAndProfiles) {
    CpuBoidsPlugin plugin;
    WorldSpec spec;
    spec.agents = 128;
    plugin.open(spec);
    const StageTimes t = plugin.step();
    EXPECT_GT(t.simulation, 0.0);
    EXPECT_GT(t.modification, 0.0);
    EXPECT_GT(t.draw, 0.0);
    EXPECT_EQ(plugin.counters().pairs_examined, 128u * 128u);
    EXPECT_EQ(plugin.counters().modifies, 128u);
    EXPECT_EQ(plugin.draw_matrices().size(), 128u);
    plugin.close();
}

TEST(CpuPlugin, ThinkFrequencyReducesPairsTenfold) {
    WorldSpec spec;
    spec.agents = 500;
    spec.think_period = 10;
    CpuBoidsPlugin plugin;
    plugin.open(spec);
    for (int i = 0; i < 10; ++i) plugin.step();
    // Over a full period, every agent thought once: n*n pairs total instead
    // of 10*n*n.
    EXPECT_EQ(plugin.counters().pairs_examined, 500u * 500u);
    plugin.close();
}

TEST(CpuPlugin, FlockStaysInWorldAndMoves) {
    WorldSpec spec;
    spec.agents = 200;
    CpuBoidsPlugin plugin;
    plugin.open(spec);
    const auto before = plugin.snapshot();
    for (int i = 0; i < 20; ++i) plugin.step();
    const auto after = plugin.snapshot();
    bool moved = false;
    for (std::size_t i = 0; i < after.size(); ++i) {
        EXPECT_LE(after[i].position.length(), spec.world_radius + 1e-3f);
        EXPECT_LE(after[i].speed, spec.params.max_speed + 1e-3f);
        if (!(after[i].position == before[i].position)) moved = true;
    }
    EXPECT_TRUE(moved);
}

TEST(CostModel, Fig55ShapeAt1024Agents) {
    // The profile of Fig. 5.5: neighbor search ~82% of the CPU cycles.
    WorldSpec spec;
    spec.agents = 1024;
    CpuBoidsPlugin plugin;
    plugin.open(spec);
    const StageTimes t = plugin.step();
    const CpuCostModel& m = plugin.cost_model();
    const double ns = neighbor_search_seconds(plugin.last_step_counters(), m);
    const double share = ns / t.update();
    EXPECT_GT(share, 0.75);
    EXPECT_LT(share, 0.90);
    plugin.close();
}

}  // namespace
