// Engine tests: SPMD execution, built-in variables, __syncthreads semantics,
// shared memory, divergence accounting, async launch timeline.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cusim/cusim.hpp"

namespace {

using namespace cusim;

// Every thread writes its global id; checks the thread/block index plumbing.
KernelTask iota_kernel(ThreadCtx& ctx, DevicePtr<std::uint32_t> out) {
    const std::uint64_t gid = ctx.global_id();
    if (gid < out.size()) {
        out.write(ctx, gid, static_cast<std::uint32_t>(gid));
    }
    co_return;
}

TEST(Engine, SpmdIotaCoversGrid) {
    Device dev(tiny_properties());
    auto out = dev.malloc_n<std::uint32_t>(1000);
    LaunchConfig cfg{dim3{8}, dim3{128}};
    auto stats = dev.launch(cfg, [&](ThreadCtx& ctx) { return iota_kernel(ctx, out); });
    EXPECT_EQ(stats.blocks, 8u);
    EXPECT_EQ(stats.threads, 1024u);
    EXPECT_EQ(stats.warps, 8u * 4u);

    std::vector<std::uint32_t> host(1000);
    dev.download(std::span<std::uint32_t>(host), out);
    for (std::uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(host[i], i) << i;
}

// 2-dimensional block indexing as in the thesis' kernel example (§4.3).
KernelTask dim2_kernel(ThreadCtx& ctx, DevicePtr<std::uint32_t> out) {
    const unsigned bid = ctx.block_idx().x + ctx.grid_dim().x * ctx.block_idx().y;
    const unsigned tid = ctx.thread_idx().x + ctx.block_dim().x * ctx.thread_idx().y;
    const std::uint64_t gid = std::uint64_t{bid} * ctx.block_dim().count() + tid;
    out.write(ctx, gid, static_cast<std::uint32_t>(gid * 3));
    co_return;
}

TEST(Engine, TwoDimensionalIndexing) {
    Device dev(tiny_properties());
    // 10x10 blocks of 8x8 threads: the geometry of listing 4.3.
    LaunchConfig cfg{make_dim3(10, 10), make_dim3(8, 8)};
    auto out = dev.malloc_n<std::uint32_t>(cfg.total_threads());
    dev.launch(cfg, [&](ThreadCtx& ctx) { return dim2_kernel(ctx, out); });
    std::vector<std::uint32_t> host(cfg.total_threads());
    dev.download(std::span<std::uint32_t>(host), out);
    for (std::uint64_t i = 0; i < host.size(); ++i) EXPECT_EQ(host[i], i * 3);
}

// Block-wide reduction through shared memory exercises __syncthreads.
KernelTask reduce_kernel(ThreadCtx& ctx, DevicePtr<std::uint32_t> in,
                         DevicePtr<std::uint32_t> out) {
    auto scratch = ctx.shared_array<std::uint32_t>(ctx.block_dim().x);
    const unsigned tid = ctx.thread_idx().x;
    const std::uint64_t gid = ctx.global_id();
    scratch.write(ctx, tid, in.read(ctx, gid));
    co_await ctx.syncthreads();
    for (unsigned stride = ctx.block_dim().x / 2; stride > 0; stride /= 2) {
        if (tid < stride) {
            const auto a = scratch.read(ctx, tid);
            const auto b = scratch.read(ctx, tid + stride);
            ctx.charge(Op::IAdd);
            scratch.write(ctx, tid, a + b);
        }
        co_await ctx.syncthreads();
    }
    if (tid == 0) out.write(ctx, ctx.block_idx().x, scratch.read(ctx, 0));
    co_return;
}

TEST(Engine, SharedMemoryReduction) {
    Device dev(tiny_properties());
    constexpr unsigned kBlocks = 4, kThreads = 64;
    std::vector<std::uint32_t> input(kBlocks * kThreads);
    std::iota(input.begin(), input.end(), 0);
    auto in = dev.malloc_n<std::uint32_t>(input.size());
    auto out = dev.malloc_n<std::uint32_t>(kBlocks);
    dev.upload(in, std::span<const std::uint32_t>(input));

    LaunchConfig cfg{dim3{kBlocks}, dim3{kThreads}};
    cfg.shared_bytes = kThreads * sizeof(std::uint32_t);
    auto stats =
        dev.launch(cfg, [&](ThreadCtx& ctx) { return reduce_kernel(ctx, in, out); });
    // log2(64) sync rounds plus the initial one.
    EXPECT_EQ(stats.syncthreads_count, kBlocks * 7u);

    std::vector<std::uint32_t> result(kBlocks);
    dev.download(std::span<std::uint32_t>(result), out);
    for (unsigned b = 0; b < kBlocks; ++b) {
        std::uint32_t expect = 0;
        for (unsigned t = 0; t < kThreads; ++t) expect += input[b * kThreads + t];
        EXPECT_EQ(result[b], expect) << "block " << b;
    }
}

// A barrier reached by only part of the block must be diagnosed, not hang.
KernelTask divergent_barrier_kernel(ThreadCtx& ctx) {
    if (ctx.thread_idx().x < 16) {
        co_await ctx.syncthreads();
    }
    co_return;
}

TEST(Engine, DivergentBarrierThrows) {
    Device dev(tiny_properties());
    LaunchConfig cfg{dim3{1}, dim3{32}};
    try {
        dev.launch(cfg, [](ThreadCtx& ctx) { return divergent_barrier_kernel(ctx); });
        FAIL() << "expected LaunchFailure";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::LaunchFailure);
    }
}

// Exceptions thrown in a kernel body surface as LaunchFailure.
KernelTask throwing_kernel(ThreadCtx& ctx) {
    if (ctx.global_id() == 3) throw std::runtime_error("boom");
    co_return;
}

TEST(Engine, KernelExceptionSurfaces) {
    Device dev(tiny_properties());
    LaunchConfig cfg{dim3{1}, dim3{8}};
    try {
        dev.launch(cfg, [](ThreadCtx& ctx) { return throwing_kernel(ctx); });
        FAIL() << "expected LaunchFailure";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::LaunchFailure);
        EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    }
}

// Out-of-bounds device access is caught per element.
KernelTask oob_kernel(ThreadCtx& ctx, DevicePtr<int> p) {
    p.write(ctx, p.size(), 1);
    co_return;
}

TEST(Engine, OutOfBoundsAccessThrows) {
    Device dev(tiny_properties());
    auto p = dev.malloc_n<int>(4);
    LaunchConfig cfg{dim3{1}, dim3{1}};
    EXPECT_THROW(dev.launch(cfg, [&](ThreadCtx& ctx) { return oob_kernel(ctx, p); }), Error);
}

// Divergence accounting: a branch taken by exactly one lane per warp-step.
KernelTask divergent_branch_kernel(ThreadCtx& ctx, int rounds) {
    for (int r = 0; r < rounds; ++r) {
        if (ctx.branch(ctx.thread_idx().x % kWarpSize == static_cast<unsigned>(r) % kWarpSize)) {
            ctx.charge(Op::FAdd, 4);
        }
    }
    co_return;
}

TEST(Engine, DivergenceEstimatorCountsMixedBranches) {
    Device dev(tiny_properties());
    LaunchConfig cfg{dim3{1}, dim3{64}};
    auto stats = dev.launch(
        cfg, [&](ThreadCtx& ctx) { return divergent_branch_kernel(ctx, 32); });
    // Each of the 32 rounds has exactly one taken lane per warp -> one
    // divergent warp-step per round per warp.
    EXPECT_EQ(stats.divergent_events, 2u * 32u);
    EXPECT_EQ(stats.branch_evaluations, 64u * 32u);
}

KernelTask uniform_branch_kernel(ThreadCtx& ctx, int rounds) {
    for (int r = 0; r < rounds; ++r) {
        if (ctx.branch(r % 2 == 0)) ctx.charge(Op::FAdd);
    }
    co_return;
}

TEST(Engine, UniformBranchesDoNotDiverge) {
    Device dev(tiny_properties());
    LaunchConfig cfg{dim3{2}, dim3{64}};
    auto stats =
        dev.launch(cfg, [&](ThreadCtx& ctx) { return uniform_branch_kernel(ctx, 10); });
    EXPECT_EQ(stats.divergent_events, 0u);
}

// Asynchronous launch semantics (§2.2): the launch itself only costs the
// host the launch overhead; touching device memory afterwards blocks until
// the kernel is done.
KernelTask busy_kernel(ThreadCtx& ctx, DevicePtr<float> data) {
    for (int i = 0; i < 1000; ++i) {
        (void)data.read(ctx, ctx.global_id() % data.size());
    }
    co_return;
}

TEST(Engine, LaunchIsAsynchronousOnTheTimeline) {
    Device dev(tiny_properties());
    auto data = dev.malloc_n<float>(256);
    LaunchConfig cfg{dim3{4}, dim3{64}};
    const double host_before = dev.host_time();
    dev.launch(cfg, [&](ThreadCtx& ctx) { return busy_kernel(ctx, data); });
    const double host_after = dev.host_time();
    EXPECT_NEAR(host_after - host_before, dev.properties().cost.launch_overhead_s, 1e-12);
    EXPECT_TRUE(dev.kernel_active());

    // Reading device memory synchronises first.
    float sink;
    dev.copy_to_host(&sink, data.addr(), sizeof(float));
    EXPECT_FALSE(dev.kernel_active());
    EXPECT_GE(dev.host_time(), dev.device_free_at());
}

TEST(Engine, LaunchGeometryValidation) {
    Device dev(tiny_properties());
    auto noop = [](ThreadCtx&) -> KernelTask { co_return; };
    EXPECT_THROW(dev.launch(LaunchConfig{dim3{1}, dim3{513}}, noop), Error);
    EXPECT_THROW(dev.launch(LaunchConfig{dim3{1u << 17}, dim3{1}}, noop), Error);
    EXPECT_THROW(dev.launch(LaunchConfig{dim3{1, 1, 1u << 17}, dim3{1}}, noop), Error);
    LaunchConfig too_much_shared{dim3{1}, dim3{32}};
    too_much_shared.shared_bytes = 17 * 1024;
    EXPECT_THROW(dev.launch(too_much_shared, noop), Error);
}

// 3-D grids run every block, not just one z-slice: each block increments its
// own linear-bid slot exactly once, covering all of grid.count().
KernelTask count_block_kernel(ThreadCtx& ctx, DevicePtr<int> slots) {
    if (ctx.linear_tid() == 0) {
        slots.write(ctx, ctx.linear_bid(), slots.read(ctx, ctx.linear_bid()) + 1);
    }
    co_return;
}

TEST(Engine, ThreeDimensionalGridRunsEveryBlock) {
    Device dev(tiny_properties());
    LaunchConfig cfg{dim3{3, 2, 4}, dim3{8}};
    auto slots = dev.malloc_n<int>(cfg.grid.count());
    const std::vector<int> zeros(cfg.grid.count(), 0);
    dev.upload(slots, std::span<const int>(zeros));
    auto stats =
        dev.launch(cfg, [&](ThreadCtx& ctx) { return count_block_kernel(ctx, slots); });
    EXPECT_EQ(stats.blocks, 24u);
    std::vector<int> host(cfg.grid.count());
    dev.copy_to_host(host.data(), slots.addr(), host.size() * sizeof(int));
    for (std::size_t i = 0; i < host.size(); ++i) {
        EXPECT_EQ(host[i], 1) << "block slot " << i;
    }
}

}  // namespace
