// Engine stress and edge-case tests: extreme geometries, partial warps,
// many barrier rounds, multiple shared arrays, inter-thread communication
// patterns, and kernel-argument plumbing through the trampoline layer.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cusim/cusim.hpp"

namespace {

using namespace cusim;

KernelTask count_me(ThreadCtx& ctx, DevicePtr<std::uint32_t> counters) {
    // One counter slot per block: threads within a block are serialised by
    // the engine, but blocks may run on concurrent host workers, and compute
    // capability 1.0 has no global atomics (§3.2.1 lists them as optional),
    // so a single cross-block counter would be a data race — in the
    // simulator and on the hardware alike.
    const std::uint64_t bid = ctx.linear_bid();
    counters.write(ctx, bid, counters.read(ctx, bid) + 1);
    co_return;
}

class GeometrySweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned, unsigned>> {};

TEST_P(GeometrySweep, EveryThreadRunsExactlyOnce) {
    const auto [gx, gy, threads] = GetParam();
    Device dev(tiny_properties());
    const std::uint64_t nblocks = std::uint64_t{gx} * gy;
    auto counters = dev.malloc_n<std::uint32_t>(nblocks);
    const std::vector<std::uint32_t> zeros(nblocks, 0);
    dev.copy_to_device(counters.addr(), zeros.data(), nblocks * 4);

    LaunchConfig cfg{dim3{gx, gy}, dim3{threads}};
    auto stats =
        dev.launch(cfg, [&](ThreadCtx& ctx) { return count_me(ctx, counters); });
    std::vector<std::uint32_t> per_block(nblocks);
    dev.copy_to_host(per_block.data(), counters.addr(), nblocks * 4);
    const std::uint64_t total =
        std::accumulate(per_block.begin(), per_block.end(), std::uint64_t{0});
    EXPECT_EQ(total, cfg.total_threads());
    EXPECT_EQ(stats.threads, cfg.total_threads());
}

INSTANTIATE_TEST_SUITE_P(Shapes, GeometrySweep,
                         ::testing::Values(std::tuple{1u, 1u, 1u},          // minimal
                                           std::tuple{1u, 1u, 512u},        // max block
                                           std::tuple{7u, 3u, 33u},         // partial warps
                                           std::tuple{1u, 16u, 64u},        // y-heavy grid
                                           std::tuple{100u, 1u, 17u}));

KernelTask dim3_block_kernel(ThreadCtx& ctx, DevicePtr<std::uint32_t> out) {
    // 3-dimensional thread indexing (§2.2: threads are 1-, 2- or 3-dim).
    const auto& t = ctx.thread_idx();
    const auto& b = ctx.block_dim();
    const unsigned linear = t.x + b.x * (t.y + b.y * t.z);
    EXPECT_EQ(linear, ctx.linear_tid());
    out.write(ctx, ctx.global_id(), linear);
    co_return;
}

TEST(EngineStress, ThreeDimensionalBlocks) {
    Device dev(tiny_properties());
    LaunchConfig cfg{dim3{2}, dim3{4, 4, 4}};  // 64 threads, 3-dim
    auto out = dev.malloc_n<std::uint32_t>(cfg.total_threads());
    dev.launch(cfg, [&](ThreadCtx& ctx) { return dim3_block_kernel(ctx, out); });
    std::vector<std::uint32_t> host(cfg.total_threads());
    dev.download(std::span<std::uint32_t>(host), out);
    for (unsigned block = 0; block < 2; ++block) {
        for (unsigned i = 0; i < 64; ++i) EXPECT_EQ(host[block * 64 + i], i);
    }
}

KernelTask rotate_kernel(ThreadCtx& ctx, DevicePtr<std::uint32_t> data, int rounds) {
    // Block-wide rotation through shared memory: each round every thread
    // passes its value to the next lane. Exercises many barrier rounds.
    auto s = ctx.shared_array<std::uint32_t>(ctx.block_dim().x);
    const unsigned tid = ctx.thread_idx().x;
    const unsigned n = ctx.block_dim().x;
    std::uint32_t value = data.read(ctx, ctx.global_id());
    for (int r = 0; r < rounds; ++r) {
        s.write(ctx, tid, value);
        co_await ctx.syncthreads();
        value = s.read(ctx, (tid + n - 1) % n);
        co_await ctx.syncthreads();
    }
    data.write(ctx, ctx.global_id(), value);
    co_return;
}

TEST(EngineStress, ManyBarrierRoundsRotateCorrectly) {
    Device dev(tiny_properties());
    constexpr unsigned kThreads = 96;
    constexpr int kRounds = 100;
    std::vector<std::uint32_t> init(kThreads);
    std::iota(init.begin(), init.end(), 0);
    auto data = dev.malloc_n<std::uint32_t>(kThreads);
    dev.upload(data, std::span<const std::uint32_t>(init));

    LaunchConfig cfg{dim3{1}, dim3{kThreads}};
    cfg.shared_bytes = kThreads * sizeof(std::uint32_t);
    auto stats =
        dev.launch(cfg, [&](ThreadCtx& ctx) { return rotate_kernel(ctx, data, kRounds); });
    EXPECT_EQ(stats.syncthreads_count, 2u * kRounds);

    std::vector<std::uint32_t> result(kThreads);
    dev.download(std::span<std::uint32_t>(result), data);
    for (unsigned i = 0; i < kThreads; ++i) {
        // After 100 single-step rotations the value from lane (i - 100) mod n
        // arrives at lane i.
        EXPECT_EQ(result[i], (i + kThreads - kRounds % kThreads) % kThreads);
    }
}

KernelTask two_arrays_kernel(ThreadCtx& ctx, DevicePtr<float> out) {
    // Two shared arrays with different types must not overlap, and every
    // thread must see the same carving.
    auto a = ctx.shared_array<std::uint8_t>(13);  // odd size: forces padding
    auto b = ctx.shared_array<double>(4);
    const unsigned tid = ctx.thread_idx().x;
    if (tid == 0) {
        for (unsigned i = 0; i < 13; ++i) a.write(ctx, i, static_cast<std::uint8_t>(i));
        for (unsigned i = 0; i < 4; ++i) b.write(ctx, i, i * 1.5);
    }
    co_await ctx.syncthreads();
    if (tid == 1) {
        float sum = 0.0f;
        for (unsigned i = 0; i < 13; ++i) sum += a.read(ctx, i);
        for (unsigned i = 0; i < 4; ++i) sum += static_cast<float>(b.read(ctx, i));
        out.write(ctx, 0, sum);
    }
    co_return;
}

TEST(EngineStress, MultipleSharedArraysWithPadding) {
    Device dev(tiny_properties());
    auto out = dev.malloc_n<float>(1);
    LaunchConfig cfg{dim3{1}, dim3{32}};
    cfg.shared_bytes = 64;
    dev.launch(cfg, [&](ThreadCtx& ctx) { return two_arrays_kernel(ctx, out); });
    float sum = 0.0f;
    dev.copy_to_host(&sum, out.addr(), 4);
    EXPECT_FLOAT_EQ(sum, 78.0f + 9.0f);  // 0..12 summed + (0+1.5+3+4.5)
}

TEST(EngineStress, SharedArrayOverflowDiagnosed) {
    Device dev(tiny_properties());
    LaunchConfig cfg{dim3{1}, dim3{1}};
    cfg.shared_bytes = 16;
    auto entry = [](ThreadCtx& ctx) -> KernelTask {
        (void)ctx.shared_array<double>(3);  // 24 bytes > 16
        co_return;
    };
    EXPECT_THROW(dev.launch(cfg, entry), Error);
}

KernelTask grid_edge_kernel(ThreadCtx& ctx, DevicePtr<std::uint32_t> out) {
    if (ctx.block_idx().x == ctx.grid_dim().x - 1 && ctx.thread_idx().x == 0) {
        out.write(ctx, 0, ctx.block_idx().x);
    }
    co_return;
}

TEST(EngineStress, WideGridsExecute) {
    // 4096 single-thread blocks: scheduling pressure on the wave model.
    Device dev(tiny_properties());
    auto out = dev.malloc_n<std::uint32_t>(1);
    LaunchConfig cfg{dim3{4096}, dim3{1}};
    auto stats =
        dev.launch(cfg, [&](ThreadCtx& ctx) { return grid_edge_kernel(ctx, out); });
    EXPECT_EQ(stats.blocks, 4096u);
    std::uint32_t last = 0;
    dev.copy_to_host(&last, out.addr(), 4);
    EXPECT_EQ(last, 4095u);
}

TEST(EngineStress, LaunchesAccumulateOnTheDeviceTimeline) {
    Device dev(tiny_properties());
    // Long enough that the device is still busy when the host issues the
    // next launch (the host only pays ~8us of launch overhead per call).
    auto entry = [](ThreadCtx& ctx) -> KernelTask {
        ctx.charge(Op::FAdd, 1'000'000);
        co_return;
    };
    LaunchConfig cfg{dim3{1}, dim3{32}};
    const auto s1 = dev.launch(cfg, entry);
    const double busy1 = dev.device_free_at();
    EXPECT_TRUE(dev.kernel_active());
    const auto s2 = dev.launch(cfg, entry);
    EXPECT_DOUBLE_EQ(s1.device_seconds, s2.device_seconds);
    // Back-to-back launches queue: the second starts when the first ends.
    EXPECT_NEAR(dev.device_free_at(), busy1 + s2.device_seconds, 1e-12);
}

}  // namespace
