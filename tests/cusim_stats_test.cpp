// LaunchStats consistency invariants and multi-device isolation.
#include <gtest/gtest.h>

#include "cusim/cusim.hpp"

namespace {

using namespace cusim;

KernelTask write_n(ThreadCtx& ctx, DevicePtr<float> out, int per_thread) {
    for (int i = 0; i < per_thread; ++i) {
        out.write(ctx, (ctx.global_id() + i) % out.size(), 1.0f);
    }
    co_return;
}

TEST(LaunchStats, CountsMatchGeometry) {
    Device dev(tiny_properties());
    auto out = dev.malloc_n<float>(1024);
    LaunchConfig cfg{dim3{6}, dim3{100}};  // 4 warps per block (rounded up)
    const auto stats =
        dev.launch(cfg, [&](ThreadCtx& ctx) { return write_n(ctx, out, 3); });
    EXPECT_EQ(stats.blocks, 6u);
    EXPECT_EQ(stats.threads, 600u);
    EXPECT_EQ(stats.warps, 6u * 4u);
    EXPECT_EQ(stats.resident_blocks_per_mp, blocks_per_mp(dev.properties().cost, cfg));
}

TEST(LaunchStats, WriteTrafficIsExact) {
    Device dev(tiny_properties());
    auto out = dev.malloc_n<float>(4096);
    LaunchConfig cfg{dim3{4}, dim3{64}};
    constexpr int kPerThread = 5;
    const auto stats =
        dev.launch(cfg, [&](ThreadCtx& ctx) { return write_n(ctx, out, kPerThread); });
    const auto charged = dev.properties().cost.charged_bytes(sizeof(float));
    EXPECT_EQ(stats.bytes_written, 4u * 64u * kPerThread * charged);
    EXPECT_EQ(stats.bytes_read, 0u);
    // Writes are fire-and-forget: no stall cycles at all.
    EXPECT_EQ(stats.stall_cycles, 0u);
}

TEST(LaunchStats, DeviceSecondsMonotoneInWork) {
    Device dev(tiny_properties());
    auto run = [&](unsigned ops) {
        return dev
            .launch(LaunchConfig{dim3{2}, dim3{64}},
                    [ops](ThreadCtx& ctx) -> KernelTask {
                        ctx.charge(Op::FMad, ops);
                        co_return;
                    })
            .device_seconds;
    };
    const double t1 = run(1000);
    const double t2 = run(2000);
    const double t4 = run(4000);
    EXPECT_LT(t1, t2);
    EXPECT_LT(t2, t4);
    EXPECT_NEAR(t4 / t1, 4.0, 0.2);  // compute-bound: proportional
}

TEST(MultiDevice, MemoryAndClocksAreIsolated) {
    Registry::instance().reset();
    const int second = Registry::instance().add_device(tiny_properties());
    Device& a = Registry::instance().device(0);
    Device& b = Registry::instance().device(second);

    const auto used_a_before = a.memory().used();
    const auto addr = b.malloc_bytes(4096);
    EXPECT_EQ(a.memory().used(), used_a_before);  // a untouched
    EXPECT_GT(b.memory().used(), 0u);

    // Busy device b does not advance device a's timeline.
    b.launch(LaunchConfig{dim3{1}, dim3{32}}, [](ThreadCtx& ctx) -> KernelTask {
        ctx.charge(Op::FAdd, 1'000'000);
        co_return;
    });
    EXPECT_TRUE(b.kernel_active());
    EXPECT_FALSE(a.kernel_active());

    b.free_bytes(addr);
    Registry::instance().reset();
}

TEST(MultiDevice, SameAddressesMeanDifferentMemory) {
    Registry::instance().reset();
    const int second = Registry::instance().add_device(tiny_properties());
    Device& a = Registry::instance().device(0);
    Device& b = Registry::instance().device(second);

    // Fresh address spaces: both allocators may hand out the same offset,
    // but the backing stores are distinct.
    const auto pa = a.malloc_bytes(64);
    const auto pb = b.malloc_bytes(64);
    const int va = 111, vb = 222;
    a.copy_to_device(pa, &va, 4);
    b.copy_to_device(pb, &vb, 4);
    int ra = 0, rb = 0;
    a.copy_to_host(&ra, pa, 4);
    b.copy_to_host(&rb, pb, 4);
    EXPECT_EQ(ra, 111);
    EXPECT_EQ(rb, 222);
    Registry::instance().reset();
}

}  // namespace
