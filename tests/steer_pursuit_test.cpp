// Obstacle-avoidance behavior and the pursuit scenario plugin.
#include <gtest/gtest.h>

#include "steer/steer.hpp"

namespace {

using namespace steer;

Agent moving_agent(Vec3 pos, Vec3 fwd, float speed) {
    Agent a;
    a.position = pos;
    a.forward = fwd.normalized();
    a.speed = speed;
    return a;
}

TEST(Obstacles, NoThreatNoSteering) {
    const Agent a = moving_agent({0, 0, 0}, {0, 0, 1}, 5.0f);
    // Behind the agent.
    EXPECT_EQ(avoid_obstacle(a, 0.5f, {{0, 0, -10}, 3.0f}, 2.0f), kZero);
    // Far off to the side.
    EXPECT_EQ(avoid_obstacle(a, 0.5f, {{20, 0, 5}, 3.0f}, 2.0f), kZero);
    // Beyond the look-ahead horizon.
    EXPECT_EQ(avoid_obstacle(a, 0.5f, {{0, 0, 100}, 3.0f}, 2.0f), kZero);
    // A stationary agent looks ahead zero distance.
    const Agent still = moving_agent({0, 0, 0}, {0, 0, 1}, 0.0f);
    EXPECT_EQ(avoid_obstacle(still, 0.5f, {{0, 0, 3}, 2.0f}, 2.0f), kZero);
}

TEST(Obstacles, HeadOnCollisionSteersLaterally) {
    const Agent a = moving_agent({0, 0, 0}, {0, 0, 1}, 5.0f);
    const SphereObstacle dead_ahead{{0.5f, 0, 6}, 2.0f};
    const Vec3 s = avoid_obstacle(a, 0.5f, dead_ahead, 2.0f);
    ASSERT_FALSE(s.is_zero());
    // Steers away from the obstacle centre (obstacle slightly +x -> steer -x)
    EXPECT_LT(s.x, 0.0f);
    // Lateral: no component along the heading.
    EXPECT_NEAR(s.dot(a.forward), 0.0f, 1e-5f);
}

TEST(Obstacles, CloserThreatsSteerHarder) {
    const Agent a = moving_agent({0, 0, 0}, {0, 0, 1}, 5.0f);
    const Vec3 near = avoid_obstacle(a, 0.5f, {{0.5f, 0, 3}, 2.0f}, 2.0f);
    const Vec3 far = avoid_obstacle(a, 0.5f, {{0.5f, 0, 9}, 2.0f}, 2.0f);
    EXPECT_GT(near.length(), far.length());
}

TEST(Obstacles, NearestThreatWinsAmongMany) {
    const Agent a = moving_agent({0, 0, 0}, {0, 0, 1}, 5.0f);
    const SphereObstacle near_left{{-0.5f, 0, 3}, 2.0f};   // steer +x
    const SphereObstacle far_right{{0.5f, 0, 8}, 2.0f};    // steer -x
    const SphereObstacle set[] = {far_right, near_left};
    const Vec3 s = avoid_obstacles(a, 0.5f, set, 2.0f);
    EXPECT_GT(s.x, 0.0f);  // the nearer (left) obstacle decided
}

TEST(Obstacles, AgentActuallyAvoidsTheSphere) {
    AgentParams params;
    Agent a = moving_agent({0, 0, -20}, {0, 0, 1}, params.max_speed);
    const SphereObstacle wall{{0, 0, 0}, 4.0f};
    float min_center_distance = 1e30f;
    for (int i = 0; i < 600; ++i) {
        Vec3 steering = avoid_obstacle(a, params.radius, wall, 2.0f) * params.max_force;
        if (steering.is_zero()) steering = seek(a, Vec3{0, 0, 40}, params.max_speed);
        apply_steering(a, steering, 1.0f / 60.0f, params);
        min_center_distance = std::min(min_center_distance, (wall.center - a.position).length());
    }
    // Never penetrated the obstacle...
    EXPECT_GT(min_center_distance, wall.radius);
    // ...and still made it to the far side.
    EXPECT_GT(a.position.z, 10.0f);
}

TEST(PursuitPlugin, RunsDeterministically) {
    WorldSpec spec;
    spec.agents = 96;
    PursuitPlugin p1, p2;
    p1.open(spec);
    p2.open(spec);
    for (int i = 0; i < 20; ++i) {
        p1.step();
        p2.step();
    }
    const auto f1 = p1.snapshot();
    const auto f2 = p2.snapshot();
    for (std::size_t i = 0; i < f1.size(); ++i) {
        EXPECT_EQ(f1[i].position, f2[i].position) << i;
    }
    EXPECT_EQ(p1.captures(), p2.captures());
}

TEST(PursuitPlugin, PredatorsChasePrey) {
    WorldSpec spec;
    spec.agents = 64;
    PursuitPlugin plugin;
    plugin.open(spec);
    EXPECT_EQ(plugin.predators(), 2u);  // 64 / 32

    // Over a long run predators should score at least one capture.
    for (int i = 0; i < 1500 && plugin.captures() == 0; ++i) plugin.step();
    EXPECT_GT(plugin.captures(), 0u);
    plugin.close();
}

TEST(PursuitPlugin, AgentsStayInWorldAndAvoidObstacles) {
    WorldSpec spec;
    spec.agents = 128;
    PursuitPlugin plugin;
    plugin.open(spec);
    for (int i = 0; i < 120; ++i) plugin.step();
    const auto flock = plugin.snapshot();
    // Predators are allowed a higher top speed than the prey's limit.
    const float predator_cap = spec.params.max_speed * 1.8f;
    for (std::uint32_t i = 0; i < flock.size(); ++i) {
        const auto& agent = flock[i];
        EXPECT_LE(agent.position.length(), spec.world_radius + 1e-3f);
        EXPECT_LE(agent.speed,
                  (plugin.is_predator(i) ? predator_cap : spec.params.max_speed) + 1e-3f);
        EXPECT_FALSE(std::isnan(agent.position.x));
    }
    // Agents spend no time deep inside obstacles.
    std::uint32_t deep = 0;
    for (const auto& agent : flock) {
        for (const auto& o : plugin.obstacles()) {
            if ((agent.position - o.center).length() < o.radius * 0.5f) ++deep;
        }
    }
    EXPECT_LE(deep, flock.size() / 20);
    plugin.close();
}

TEST(PursuitPlugin, StageTimesAndCountersPopulated) {
    WorldSpec spec;
    spec.agents = 64;
    PursuitPlugin plugin;
    plugin.open(spec);
    const StageTimes t = plugin.step();
    EXPECT_GT(t.simulation, 0.0);
    EXPECT_GT(t.modification, 0.0);
    EXPECT_GT(t.draw, 0.0);
    EXPECT_EQ(plugin.counters().thinks, 64u);
    EXPECT_EQ(plugin.counters().modifies, 64u);
    EXPECT_GT(plugin.counters().pairs_examined, 0u);
    EXPECT_EQ(plugin.draw_matrices().size(), 64u);
}

}  // namespace
