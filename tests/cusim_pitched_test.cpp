// Pitched (2D) device memory tests.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cusim/cusim.hpp"

namespace {

using namespace cusim;

TEST(PitchedMemory, PitchIsAlignedAndCoversRows) {
    Device dev(tiny_properties());
    auto m = malloc_pitched<float>(dev, 100, 10);  // 400-byte rows
    EXPECT_EQ(m.width(), 100u);
    EXPECT_EQ(m.height(), 10u);
    EXPECT_EQ(m.pitch() % 256, 0u);
    EXPECT_GE(m.pitch(), 100 * sizeof(float));
}

TEST(PitchedMemory, HostRoundTripSkipsPadding) {
    Device dev(tiny_properties());
    constexpr std::uint64_t kW = 33, kH = 7;  // odd width: padding guaranteed
    auto m = malloc_pitched<int>(dev, kW, kH);
    std::vector<int> host(kW * kH);
    std::iota(host.begin(), host.end(), 0);
    copy_to_pitched(dev, m, host.data());
    std::vector<int> back(kW * kH, -1);
    copy_from_pitched(dev, back.data(), m);
    EXPECT_EQ(back, host);
}

KernelTask transpose_kernel(ThreadCtx& ctx, PitchedPtr<int> in, PitchedPtr<int> out) {
    const std::uint64_t gid = ctx.global_id();
    const std::uint64_t row = gid / in.width();
    const std::uint64_t col = gid % in.width();
    if (row < in.height()) {
        out.write(ctx, col, row, in.read(ctx, row, col));
    }
    co_return;
}

TEST(PitchedMemory, DeviceSideTranspose) {
    Device dev(tiny_properties());
    constexpr std::uint64_t kW = 16, kH = 8;
    auto in = malloc_pitched<int>(dev, kW, kH);
    auto out = malloc_pitched<int>(dev, kH, kW);
    std::vector<int> host(kW * kH);
    std::iota(host.begin(), host.end(), 0);
    copy_to_pitched(dev, in, host.data());

    LaunchConfig cfg{dim3{4}, dim3{32}};  // 128 threads = kW*kH
    dev.launch(cfg, [&](ThreadCtx& ctx) { return transpose_kernel(ctx, in, out); });

    std::vector<int> back(kW * kH);
    copy_from_pitched(dev, back.data(), out);
    for (std::uint64_t r = 0; r < kH; ++r) {
        for (std::uint64_t c = 0; c < kW; ++c) {
            EXPECT_EQ(back[c * kH + r], host[r * kW + c]);
        }
    }
}

KernelTask row_oob_kernel(ThreadCtx& ctx, PitchedPtr<int> m) {
    (void)m.read(ctx, m.height(), 0);
    co_return;
}

KernelTask col_oob_kernel(ThreadCtx& ctx, PitchedPtr<int> m) {
    (void)m.read(ctx, 0, m.width());
    co_return;
}

TEST(PitchedMemory, OutOfRangeAccessDiagnosed) {
    Device dev(tiny_properties());
    auto m = malloc_pitched<int>(dev, 8, 4);
    LaunchConfig cfg{dim3{1}, dim3{1}};
    EXPECT_THROW(dev.launch(cfg, [&](ThreadCtx& ctx) { return row_oob_kernel(ctx, m); }),
                 Error);
    EXPECT_THROW(dev.launch(cfg, [&](ThreadCtx& ctx) { return col_oob_kernel(ctx, m); }),
                 Error);
}

TEST(PitchedMemory, RowsCoalesceRegardlessOfWidth) {
    // The point of pitching: 12-byte rows of Vec3-like data would be
    // uncoalesced in flat layout; pitched rows start aligned, and the
    // element type here is 4-byte, so every access is coalesced.
    Device dev(tiny_properties());
    auto m = malloc_pitched<float>(dev, 3, 4);
    auto entry = [&](ThreadCtx& ctx) -> KernelTask {
        (void)m.read(ctx, 1, 0);
        co_return;
    };
    const auto stats = dev.launch(LaunchConfig{dim3{1}, dim3{1}}, entry);
    EXPECT_EQ(stats.bytes_read, sizeof(float));
}

}  // namespace
