// Performance-model property tests at the plugin level: the *orderings* the
// thesis reports must hold for any reasonable calibration — v2 beats v1
// (shared memory), v4 beats v3 (recompute beats spill), v5 beats v3/v4
// (no host modification), think frequency helps, GPU beats CPU, and update
// time grows superlinearly in the agent count.
#include <gtest/gtest.h>

#include "gpusteer/plugin.hpp"
#include "steer/steer.hpp"

namespace {

using gpusteer::GpuBoidsPlugin;
using gpusteer::Version;
using steer::StageTimes;
using steer::WorldSpec;

double mean_update_seconds(steer::PlugIn& plugin, const WorldSpec& spec, int steps = 2) {
    plugin.open(spec);
    (void)plugin.step();  // warm up (initial uploads)
    StageTimes sum{};
    for (int i = 0; i < steps; ++i) sum += plugin.step();
    plugin.close();
    return sum.update() / steps;
}

TEST(PerfOrdering, DevelopmentVersionsImproveMonotonically) {
    WorldSpec spec;
    spec.agents = 1024;

    steer::CpuBoidsPlugin cpu;
    const double t_cpu = mean_update_seconds(cpu, spec);

    double t[6] = {};
    for (int v = 1; v <= 5; ++v) {
        GpuBoidsPlugin gpu(static_cast<Version>(v));
        t[v] = mean_update_seconds(gpu, spec);
    }

    EXPECT_LT(t[1], t_cpu);  // even the copy-paste port wins (§6.2.1: 3.9x)
    EXPECT_LT(t[2], t[1]);   // shared memory wins (§6.2.1: 3.3x over v1)
    EXPECT_LT(t[3], t[2]);   // steering on device wins (§6.2.2)
    EXPECT_LT(t[4], t[3]);   // recompute beats local-memory caching (§6.2.2)
    EXPECT_LT(t[5], t[4]);   // modification on device wins (§6.2.3)
}

TEST(PerfOrdering, SharedMemoryReducesTrafficNotWork) {
    WorldSpec spec;
    spec.agents = 512;
    GpuBoidsPlugin v1(Version::V1_NeighborSearchGlobal);
    GpuBoidsPlugin v2(Version::V2_NeighborSearchShared);
    v1.open(spec);
    v2.open(spec);
    v1.step();
    v2.step();
    // §6.2.1: the tiling reduces values read from global memory per block
    // from threads_per_block * n to n.
    auto& sim = cusim::Registry::instance().device(0);
    (void)sim;
    EXPECT_GT(v1.branch_evaluations(), 0u);
    // Same algorithm: v2 adds only the one per-tile activity guard.
    EXPECT_NEAR(static_cast<double>(v2.branch_evaluations()),
                static_cast<double>(v1.branch_evaluations()),
                0.02 * static_cast<double>(v1.branch_evaluations()));
}

TEST(PerfOrdering, ThinkFrequencySpeedsUpTheUpdateStage) {
    WorldSpec spec;
    spec.agents = 4096;
    GpuBoidsPlugin gpu(Version::V5_FullUpdateOnDevice);
    const double no_think = mean_update_seconds(gpu, spec, 2);
    GpuBoidsPlugin gpu2(Version::V5_FullUpdateOnDevice);
    const double think = mean_update_seconds(gpu2, spec.with_think(10), 10);
    // The n^2 neighbor-search work drops 10x; per-step fixed costs (the
    // modification kernel, matrix download, launch overhead) remain.
    EXPECT_LT(think, no_think / 2.0);
}

TEST(PerfOrdering, UpdateTimeGrowsSuperlinearly) {
    // Below ~1024 agents the grid does not fill all 12 multiprocessors and
    // times flatten; the superlinear regime starts once the part saturates.
    double prev = 0.0;
    for (const std::uint32_t agents : {1024u, 2048u, 4096u}) {
        WorldSpec spec;
        spec.agents = agents;
        GpuBoidsPlugin gpu(Version::V5_FullUpdateOnDevice);
        const double t = mean_update_seconds(gpu, spec, 1);
        if (prev > 0.0) {
            EXPECT_GT(t, prev * 2.0) << agents;  // more than linear
            EXPECT_LT(t, prev * 5.0) << agents;  // not worse than ~quadratic
        }
        prev = t;
    }
}

TEST(PerfOrdering, DoubleBufferingHelpsWhenDrawMatters) {
    WorldSpec spec;
    spec.agents = 2048;
    GpuBoidsPlugin plain(Version::V5_FullUpdateOnDevice, false, /*with_draw=*/true);
    GpuBoidsPlugin db(Version::V5_FullUpdateOnDevice, true, /*with_draw=*/true);

    auto frame_seconds = [&](GpuBoidsPlugin& p) {
        p.open(spec);
        (void)p.step();
        StageTimes sum{};
        for (int i = 0; i < 4; ++i) sum += p.step();
        p.close();
        return sum.total() / 4;
    };
    const double t_plain = frame_seconds(plain);
    const double t_db = frame_seconds(db);
    EXPECT_LT(t_db, t_plain);  // overlap always >= 0 here
}

TEST(PerfOrdering, GridVersionBeatsBruteForceAtScale) {
    WorldSpec spec;
    spec.agents = 2048;
    GpuBoidsPlugin v5(Version::V5_FullUpdateOnDevice);
    const double t5 = mean_update_seconds(v5, spec);
    GpuBoidsPlugin v6(Version::V6_GridNeighborSearch);
    const double t6 = mean_update_seconds(v6, spec);
    EXPECT_LT(t6, t5);  // the §7 prediction, with all transfers paid
}

TEST(PerfOrdering, CpuGridSearchBeatsCpuBruteForce) {
    WorldSpec spec;
    spec.agents = 2048;
    steer::CpuBoidsPlugin brute;
    const double tb = mean_update_seconds(brute, spec);
    steer::CpuBoidsPlugin grid;
    const double tg = mean_update_seconds(grid, spec.with_grid());
    EXPECT_LT(tg, tb / 5.0);  // O(n*density) vs O(n^2)
}

TEST(PerfOrdering, CpuUpdateDominatedByNeighborSearchAtScale) {
    WorldSpec spec;
    spec.agents = 4096;
    steer::CpuBoidsPlugin cpu;
    cpu.open(spec);
    const StageTimes t = cpu.step();
    const double ns =
        steer::neighbor_search_seconds(cpu.last_step_counters(), cpu.cost_model());
    EXPECT_GT(ns / t.update(), 0.9);  // Fig. 5.5's trend continues with n
    cpu.close();
}

TEST(PerfOrdering, GpuKernelTimeIsDeterministic) {
    WorldSpec spec;
    spec.agents = 512;
    double first = -1.0;
    for (int run = 0; run < 2; ++run) {
        GpuBoidsPlugin gpu(Version::V5_FullUpdateOnDevice);
        const double t = mean_update_seconds(gpu, spec, 2);
        if (first < 0) {
            first = t;
        } else {
            EXPECT_DOUBLE_EQ(t, first);  // simulated time: exactly repeatable
        }
    }
}

}  // namespace
