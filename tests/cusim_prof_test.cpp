// cusim::prof tests: the callback API (Enter/Exit pairing, failed exits on
// injected faults, subscription lifecycle), session scoping (enable/start/
// stop, the cusimProfilerStart/Stop mirrors, cupp::prof_session), the
// activity aggregator's derived metrics (occupancy, coalescing efficiency,
// bank conflicts, useful-vs-charged bytes, the model snapshot), determinism
// of the aggregates across engine thread counts and stream counts, transfer
// totals, and the JSON report.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "cupp/cupp.hpp"
#include "cupp/detail/minijson.hpp"
#include "cusim/cusim.hpp"

namespace {

namespace prof = cusim::prof;
namespace faults = cusim::faults;
namespace tr = cupp::trace;
using cusim::CopyKind;
using cusim::Device;
using cusim::dim3;
using cusim::ErrorCode;
using cusim::KernelTask;
using cusim::LaunchConfig;
using cusim::ThreadCtx;

/// Every test starts with the profiler fully disarmed and ends the same
/// way, so this binary behaves identically with or without CUPP_PROF
/// exported around it.
class ProfTest : public ::testing::Test {
protected:
    void SetUp() override {
        prof::reset();
        faults::reset();
        tr::metrics().reset();
        tr::clear();
    }
    void TearDown() override {
        prof::reset();
        faults::reset();
        tr::disable();
        tr::clear();
        tr::metrics().reset();
    }
};

KernelTask scale_kernel(ThreadCtx& ctx, cusim::DevicePtr<float> data) {
    const auto i = ctx.global_id();
    if (i < data.size()) data.write(ctx, i, data.read(ctx, i) * 2.0f);
    co_return;
}

/// A 12-byte element: G80 cannot coalesce it, so every lane is charged the
/// flat uncoalesced transaction (CostModel::uncoalesced_access_bytes).
struct Vec3 {
    float x, y, z;
};

KernelTask vec3_kernel(ThreadCtx& ctx, cusim::DevicePtr<Vec3> data) {
    const auto i = ctx.global_id();
    if (i < data.size()) {
        Vec3 v = data.read(ctx, i);
        v.x += 1.0f;
        data.write(ctx, i, v);
    }
    co_return;
}

/// Mixed workload for the determinism sweeps: divergent branching, shared
/// memory traffic, a barrier, and global reads/writes.
KernelTask mixed_kernel(ThreadCtx& ctx, cusim::DevicePtr<std::uint32_t> data) {
    auto tile = ctx.shared_array<std::uint32_t>(ctx.block_dim().count());
    const unsigned tid = ctx.linear_tid();
    const auto gid = ctx.global_id();
    std::uint32_t v = gid < data.size() ? data.read(ctx, gid) : 0;
    if (ctx.branch((v & 1u) == 0u)) {
        v = v * 3u + 1u;
    } else {
        v /= 2u;
    }
    tile.write(ctx, tid, v);
    co_await ctx.syncthreads();
    const std::uint32_t neighbor = tile.read(ctx, (tid + 1) % ctx.block_dim().count());
    if (gid < data.size()) data.write(ctx, gid, v + neighbor);
    co_return;
}

/// Launch config for mixed_kernel: its shared tile needs 4 bytes per thread.
LaunchConfig mixed_cfg(unsigned grid_x, unsigned block_x) {
    return LaunchConfig{dim3{grid_x}, dim3{block_x}, block_x * 4};
}

cusim::DevicePtr<std::uint32_t> upload_iota(Device& dev, std::uint64_t n) {
    auto ptr = dev.malloc_n<std::uint32_t>(n);
    std::vector<std::uint32_t> host(n);
    for (std::uint64_t i = 0; i < n; ++i) host[i] = static_cast<std::uint32_t>(i);
    dev.upload(ptr, std::span<const std::uint32_t>(host));
    return ptr;
}

// --- enablement and the disabled fast path ----------------------------------

TEST_F(ProfTest, DisabledByDefaultRecordsNothing) {
    EXPECT_FALSE(prof::armed());
    EXPECT_FALSE(prof::collecting());

    Device dev(cusim::tiny_properties());
    auto data = upload_iota(dev, 64);
    dev.launch(mixed_cfg(2, 32),
               [&](ThreadCtx& ctx) { return mixed_kernel(ctx, data); }, "unprofiled");
    dev.synchronize();

    EXPECT_TRUE(prof::kernel_activities().empty());
    EXPECT_EQ(prof::api_calls(prof::Api::Malloc), 0u)
        << "disarmed sites must not even count";
    EXPECT_EQ(prof::api_calls(prof::Api::Launch), 0u);
    EXPECT_EQ(prof::transfer_totals(CopyKind::HostToDevice).count, 0u);
    EXPECT_FALSE(prof::model_snapshot().valid);
}

// --- the callback API -------------------------------------------------------

TEST_F(ProfTest, SubscribeFiresEnterExitPairsWithPayload) {
    std::vector<prof::ApiRecord> records;
    std::vector<std::string> labels;  // ApiRecord::label dies with the callback
    const std::uint64_t id = prof::subscribe([&](const prof::ApiRecord& r) {
        records.push_back(r);
        labels.emplace_back(r.label);
    });
    EXPECT_TRUE(prof::armed());
    EXPECT_FALSE(prof::collecting()) << "a subscriber alone must not collect";

    Device dev(cusim::tiny_properties());
    auto ptr = dev.malloc_bytes(256, std::source_location::current(), "probe");
    dev.free_bytes(ptr);

    ASSERT_EQ(records.size(), 4u);
    EXPECT_EQ(records[0].api, prof::Api::Malloc);
    EXPECT_EQ(records[0].phase, prof::Phase::Enter);
    EXPECT_EQ(records[0].bytes, 256u);
    EXPECT_EQ(labels[0], "probe");
    EXPECT_EQ(records[1].api, prof::Api::Malloc);
    EXPECT_EQ(records[1].phase, prof::Phase::Exit);
    EXPECT_FALSE(records[1].failed);
    EXPECT_EQ(records[2].api, prof::Api::Free);
    EXPECT_EQ(records[2].phase, prof::Phase::Enter);
    EXPECT_EQ(records[3].phase, prof::Phase::Exit);

    ASSERT_TRUE(prof::unsubscribe(id));
    EXPECT_FALSE(prof::armed());
    (void)dev.malloc_bytes(64);
    EXPECT_EQ(records.size(), 4u) << "no callbacks after unsubscribe";
}

TEST_F(ProfTest, UnsubscribeUnknownIdReturnsFalse) {
    EXPECT_FALSE(prof::unsubscribe(0));
    EXPECT_FALSE(prof::unsubscribe(987654));
    const std::uint64_t id = prof::subscribe([](const prof::ApiRecord&) {});
    EXPECT_TRUE(prof::unsubscribe(id));
    EXPECT_FALSE(prof::unsubscribe(id)) << "double unsubscribe";
}

TEST_F(ProfTest, ApiCallCountersTrackEveryEntryPoint) {
    prof::enable();
    Device dev(cusim::tiny_properties());
    auto data = upload_iota(dev, 32);  // malloc + h2d
    std::vector<std::uint32_t> back(32, 0);
    dev.download(std::span<std::uint32_t>(back), data);  // d2h
    dev.launch(mixed_cfg(1, 32),
               [&](ThreadCtx& ctx) { return mixed_kernel(ctx, data); }, "counted");
    dev.synchronize();

    EXPECT_EQ(prof::api_calls(prof::Api::Malloc), 1u);
    EXPECT_EQ(prof::api_calls(prof::Api::MemcpyH2D), 1u);
    EXPECT_EQ(prof::api_calls(prof::Api::MemcpyD2H), 1u);
    EXPECT_EQ(prof::api_calls(prof::Api::Launch), 1u);
    EXPECT_EQ(prof::api_calls(prof::Api::Sync), 1u);
    EXPECT_EQ(prof::api_calls(prof::Api::Free), 0u);
    EXPECT_EQ(tr::metrics().counter("cusim.prof.api_calls"), 5u);
}

TEST_F(ProfTest, InjectedFaultIsVisibleAsFailedExit) {
    faults::Rule r;
    r.site = faults::Site::Launch;
    r.code = ErrorCode::LaunchFailure;
    r.nth = 1;
    faults::configure({r});

    std::vector<prof::ApiRecord> launches;
    const std::uint64_t id = prof::subscribe([&](const prof::ApiRecord& rec) {
        if (rec.api == prof::Api::Launch) launches.push_back(rec);
    });

    Device dev(cusim::tiny_properties());
    auto data = upload_iota(dev, 32);
    const auto try_launch = [&] {
        dev.launch(mixed_cfg(1, 32),
                   [&](ThreadCtx& ctx) { return mixed_kernel(ctx, data); }, "doomed");
    };
    EXPECT_THROW(try_launch(), cusim::Error);

    ASSERT_EQ(launches.size(), 2u) << "Enter and Exit even when the call throws";
    EXPECT_EQ(launches[0].phase, prof::Phase::Enter);
    EXPECT_FALSE(launches[0].failed);
    EXPECT_EQ(launches[1].phase, prof::Phase::Exit);
    EXPECT_TRUE(launches[1].failed) << "the injected fault must mark the Exit";

    launches.clear();
    EXPECT_NO_THROW(try_launch());
    ASSERT_EQ(launches.size(), 2u);
    EXPECT_FALSE(launches[1].failed);
    prof::unsubscribe(id);
}

TEST_F(ProfTest, InjectedLaunchFaultLeavesNoHalfRecordedActivity) {
    prof::enable();
    faults::Rule r;
    r.site = faults::Site::Launch;
    r.code = ErrorCode::LaunchFailure;
    r.nth = 1;
    faults::configure({r});

    Device dev(cusim::tiny_properties());
    auto data = upload_iota(dev, 32);
    const auto try_launch = [&] {
        dev.launch(mixed_cfg(1, 32),
                   [&](ThreadCtx& ctx) { return mixed_kernel(ctx, data); }, "atomic");
    };
    EXPECT_THROW(try_launch(), cusim::Error);
    EXPECT_TRUE(prof::kernel_activities().empty())
        << "a launch that never ran must not leave a partial activity";

    EXPECT_NO_THROW(try_launch());
    const auto activities = prof::kernel_activities();
    ASSERT_EQ(activities.size(), 1u);
    EXPECT_EQ(activities[0].launches, 1u);
    EXPECT_GT(activities[0].device_seconds, 0.0);
}

// --- sessions ---------------------------------------------------------------

TEST_F(ProfTest, StopAndStartScopeCollection) {
    prof::enable();
    EXPECT_TRUE(prof::collecting());
    Device dev(cusim::tiny_properties());
    auto data = upload_iota(dev, 32);
    const auto launch_once = [&](const char* name) {
        dev.launch(mixed_cfg(1, 32),
                   [&](ThreadCtx& ctx) { return mixed_kernel(ctx, data); }, name);
    };

    prof::stop();
    EXPECT_FALSE(prof::collecting());
    EXPECT_TRUE(prof::armed()) << "callbacks stay armed while paused";
    launch_once("outside_session");
    EXPECT_TRUE(prof::kernel_activities().empty());

    prof::start();
    EXPECT_TRUE(prof::collecting());
    launch_once("inside_session");
    const auto activities = prof::kernel_activities();
    ASSERT_EQ(activities.size(), 1u);
    EXPECT_EQ(activities[0].name, "inside_session");

    // enable() started one session; stop/start added one transition each.
    EXPECT_EQ(prof::session_starts(), 2u);
    EXPECT_EQ(prof::session_stops(), 1u);
}

TEST_F(ProfTest, StartIsANoOpWithoutAnEnabledCollector) {
    prof::start();
    EXPECT_FALSE(prof::collecting());
    EXPECT_EQ(prof::session_starts(), 0u);
    prof::stop();
    EXPECT_EQ(prof::session_stops(), 0u);
}

TEST_F(ProfTest, RuntimeMirrorsStartAndStopSessions) {
    EXPECT_EQ(cusim::rt::cusimProfilerStop(), ErrorCode::Success)
        << "a mirror without an enabled collector still succeeds";
    EXPECT_EQ(prof::session_stops(), 0u);

    prof::enable();
    EXPECT_EQ(cusim::rt::cusimProfilerStop(), ErrorCode::Success);
    EXPECT_FALSE(prof::collecting());
    EXPECT_EQ(cusim::rt::cusimProfilerStart(), ErrorCode::Success);
    EXPECT_TRUE(prof::collecting());
    EXPECT_EQ(prof::session_starts(), 2u);
    EXPECT_EQ(prof::session_stops(), 1u);
    // The mirrors are themselves instrumented entry points.
    EXPECT_EQ(prof::api_calls(prof::Api::ProfilerStart), 1u);
    EXPECT_GE(prof::api_calls(prof::Api::ProfilerStop), 1u);
}

TEST_F(ProfTest, ProfSessionRaiiScopesCollection) {
    prof::enable();
    prof::stop();
    EXPECT_FALSE(prof::collecting());
    {
        cupp::prof_session roi;
        EXPECT_TRUE(prof::collecting());
        cupp::prof_session moved = std::move(roi);
        EXPECT_TRUE(prof::collecting()) << "the move must not end the session";
    }
    EXPECT_FALSE(prof::collecting()) << "leaving the scope ends the session";
    EXPECT_EQ(prof::session_starts(), 2u);
    EXPECT_EQ(prof::session_stops(), 2u);
}

// --- derived metrics --------------------------------------------------------

TEST_F(ProfTest, OccupancyMatchesResidencyAndWarpMath) {
    prof::enable();
    Device dev(cusim::tiny_properties());
    auto data = upload_iota(dev, 16 * 64);
    dev.launch(mixed_cfg(16, 64),
               [&](ThreadCtx& ctx) { return mixed_kernel(ctx, data); }, "occ");

    const auto activities = prof::kernel_activities();
    ASSERT_EQ(activities.size(), 1u);
    const auto& k = activities[0];
    const unsigned max_warps = prof::model_snapshot().max_warps_per_mp;
    ASSERT_GT(max_warps, 0u);
    const unsigned resident = k.totals.resident_blocks_per_mp;
    ASSERT_GT(resident, 0u);
    // 64-thread blocks are 2 warps each.
    const unsigned expect_warps = std::min(resident * 2, max_warps);
    EXPECT_DOUBLE_EQ(k.occupancy(max_warps),
                     static_cast<double>(expect_warps) / max_warps);
    EXPECT_GT(k.occupancy(max_warps), 0.0);
    EXPECT_LE(k.occupancy(max_warps), 1.0);
}

TEST_F(ProfTest, CoalescedFloatTrafficIsFullEfficiency) {
    prof::enable();
    Device dev(cusim::tiny_properties());
    auto data = dev.malloc_n<float>(64);
    const std::vector<float> host(64, 1.0f);
    dev.upload(data, std::span<const float>(host));
    dev.launch(LaunchConfig{dim3{2}, dim3{32}},
               [&](ThreadCtx& ctx) { return scale_kernel(ctx, data); }, "floats");

    const auto activities = prof::kernel_activities();
    ASSERT_EQ(activities.size(), 1u);
    const auto& t = activities[0].totals;
    // 4-byte elements coalesce: charged == useful == 64 reads + 64 writes.
    EXPECT_EQ(t.useful_bytes_read, 64u * sizeof(float));
    EXPECT_EQ(t.bytes_read, 64u * sizeof(float));
    EXPECT_EQ(t.useful_bytes_written, 64u * sizeof(float));
    EXPECT_EQ(t.bytes_written, 64u * sizeof(float));
    EXPECT_DOUBLE_EQ(activities[0].coalescing_efficiency(), 1.0);
}

TEST_F(ProfTest, UncoalescedStructTrafficChargesPadding) {
    prof::enable();
    Device dev(cusim::tiny_properties());
    auto data = dev.malloc_n<Vec3>(64);
    const std::vector<Vec3> host(64, Vec3{1, 2, 3});
    dev.upload(data, std::span<const Vec3>(host));
    dev.launch(LaunchConfig{dim3{2}, dim3{32}},
               [&](ThreadCtx& ctx) { return vec3_kernel(ctx, data); }, "vec3s");

    const auto activities = prof::kernel_activities();
    ASSERT_EQ(activities.size(), 1u);
    const auto& k = activities[0];
    const cusim::CostModel cm;
    const std::uint64_t charged = cm.charged_bytes(sizeof(Vec3));
    ASSERT_GT(charged, sizeof(Vec3)) << "12-byte elements must not coalesce";
    EXPECT_EQ(k.totals.useful_bytes_read, 64u * sizeof(Vec3));
    EXPECT_EQ(k.totals.bytes_read, 64u * charged);
    EXPECT_DOUBLE_EQ(k.coalescing_efficiency(),
                     static_cast<double>(sizeof(Vec3)) / static_cast<double>(charged));
}

KernelTask shared_stride_kernel(ThreadCtx& ctx, unsigned stride) {
    auto tile = ctx.shared_array<std::uint32_t>(ctx.block_dim().count() * stride);
    tile.write(ctx, ctx.linear_tid() * stride, ctx.linear_tid());
    co_return;
}

KernelTask shared_broadcast_kernel(ThreadCtx& ctx, cusim::DevicePtr<std::uint32_t> out) {
    auto tile = ctx.shared_array<std::uint32_t>(32);
    if (ctx.linear_tid() == 0) tile.write(ctx, 0, 42);
    co_await ctx.syncthreads();
    const std::uint32_t v = tile.read(ctx, 0);  // every lane, same word
    if (ctx.global_id() == 0) out.write(ctx, 0, v);
    co_return;
}

TEST_F(ProfTest, BankConflictsCountSerializedAccessesOnly) {
    prof::enable();
    Device dev(cusim::tiny_properties());

    // Stride 1: each lane of a half-warp claims its own bank — no conflicts.
    dev.launch(LaunchConfig{dim3{1}, dim3{32}, 32 * 4},
               [&](ThreadCtx& ctx) { return shared_stride_kernel(ctx, 1); }, "stride1");
    // Stride 16 words: every lane maps to bank 0 with a different word —
    // 15 serialized accesses per half-warp (the first claims the bank).
    dev.launch(LaunchConfig{dim3{1}, dim3{32}, 32 * 16 * 4},
               [&](ThreadCtx& ctx) { return shared_stride_kernel(ctx, 16); },
               "stride16");

    const auto activities = prof::kernel_activities();
    ASSERT_EQ(activities.size(), 2u);
    for (const auto& k : activities) {
        if (k.name == "stride1") {
            EXPECT_EQ(k.totals.shared_accesses, 32u);
            EXPECT_EQ(k.totals.shared_bank_conflicts, 0u);
        } else {
            EXPECT_EQ(k.name, "stride16");
            EXPECT_EQ(k.totals.shared_accesses, 32u);
            EXPECT_EQ(k.totals.shared_bank_conflicts, 30u) << "15 per half-warp";
        }
    }
}

TEST_F(ProfTest, SameWordBroadcastIsConflictFree) {
    prof::enable();
    Device dev(cusim::tiny_properties());
    auto out = dev.malloc_n<std::uint32_t>(1);
    dev.launch(LaunchConfig{dim3{1}, dim3{32}, 32 * 4},
               [&](ThreadCtx& ctx) { return shared_broadcast_kernel(ctx, out); },
               "broadcast");

    const auto activities = prof::kernel_activities();
    ASSERT_EQ(activities.size(), 1u);
    // 1 write + 32 broadcast reads; a same-word half-warp never serialises.
    EXPECT_EQ(activities[0].totals.shared_accesses, 33u);
    EXPECT_EQ(activities[0].totals.shared_bank_conflicts, 0u);
    std::vector<std::uint32_t> back(1, 0);
    dev.download(std::span<std::uint32_t>(back), out);
    EXPECT_EQ(back[0], 42u);
}

TEST_F(ProfTest, ModelSnapshotComesFromTheFirstLaunch) {
    prof::enable();
    EXPECT_FALSE(prof::model_snapshot().valid);

    cusim::DeviceProperties props = cusim::tiny_properties();
    Device dev(props);
    auto data = upload_iota(dev, 32);
    dev.launch(mixed_cfg(1, 32),
               [&](ThreadCtx& ctx) { return mixed_kernel(ctx, data); }, "snap");

    const prof::ModelSnapshot m = prof::model_snapshot();
    ASSERT_TRUE(m.valid);
    EXPECT_DOUBLE_EQ(m.core_clock_hz, props.cost.core_clock_hz);
    EXPECT_EQ(m.multiprocessors, props.cost.multiprocessors);
    EXPECT_EQ(m.max_warps_per_mp, props.cost.max_warps_per_mp);
    EXPECT_EQ(m.divergence_penalty, props.cost.divergence_penalty);
    EXPECT_DOUBLE_EQ(m.mem_bandwidth_bytes_per_s, props.cost.mem_bandwidth_bytes_per_s);
    EXPECT_DOUBLE_EQ(m.ridge_cycles_per_byte(),
                     props.cost.core_clock_hz * props.cost.multiprocessors /
                         props.cost.mem_bandwidth_bytes_per_s);

    const auto activities = prof::kernel_activities();
    ASSERT_EQ(activities.size(), 1u);
    EXPECT_GT(activities[0].divergence_serialization(m.divergence_penalty), 1.0)
        << "mixed_kernel branches divergently within every warp";
    EXPECT_GT(activities[0].arithmetic_intensity(), 0.0);
}

// --- determinism ------------------------------------------------------------

/// Canonical text form of every activity, excluding the two intentionally
/// non-deterministic pieces: host wall seconds and the device ordinal in
/// lane names (each Device instance gets a fresh trace ordinal).
std::string summarize_activities() {
    std::string out;
    for (const auto& k : prof::kernel_activities()) {
        const auto& t = k.totals;
        out += cupp::trace::format(
            "%s g=%u,%u,%u b=%u,%u,%u sh=%u n=%llu dev=%.17g blocks=%llu "
            "warps=%llu threads=%llu cc=%llu sc=%llu br=%llu bw=%llu ubr=%llu "
            "ubw=%llu div=%llu bev=%llu sa=%llu sbc=%llu sync=%llu res=%u\n",
            k.name.c_str(), k.grid.x, k.grid.y, k.grid.z, k.block.x, k.block.y,
            k.block.z, k.shared_bytes, static_cast<unsigned long long>(k.launches),
            k.device_seconds, static_cast<unsigned long long>(t.blocks),
            static_cast<unsigned long long>(t.warps),
            static_cast<unsigned long long>(t.threads),
            static_cast<unsigned long long>(t.compute_cycles),
            static_cast<unsigned long long>(t.stall_cycles),
            static_cast<unsigned long long>(t.bytes_read),
            static_cast<unsigned long long>(t.bytes_written),
            static_cast<unsigned long long>(t.useful_bytes_read),
            static_cast<unsigned long long>(t.useful_bytes_written),
            static_cast<unsigned long long>(t.divergent_events),
            static_cast<unsigned long long>(t.branch_evaluations),
            static_cast<unsigned long long>(t.shared_accesses),
            static_cast<unsigned long long>(t.shared_bank_conflicts),
            static_cast<unsigned long long>(t.syncthreads_count),
            t.resident_blocks_per_mp);
        for (const auto& lane : k.lanes) {
            const auto dot = lane.lane.find('.');
            out += cupp::trace::format(
                "  lane %s n=%llu dev=%.17g\n",
                dot == std::string::npos ? lane.lane.c_str()
                                         : lane.lane.c_str() + dot + 1,
                static_cast<unsigned long long>(lane.launches),
                lane.device_seconds);
        }
    }
    return out;
}

TEST_F(ProfTest, AggregatesAreBitIdenticalAcrossEngineThreads) {
    const auto run_with_threads = [](unsigned threads) {
        prof::reset();
        prof::enable();
        cusim::DeviceProperties props = cusim::tiny_properties();
        props.sim_threads = threads;
        Device dev(props);
        auto data = upload_iota(dev, 64 * 96);
        for (int iter = 0; iter < 3; ++iter) {
            dev.launch(mixed_cfg(64, 96),
                       [&](ThreadCtx& ctx) { return mixed_kernel(ctx, data); },
                       "sweep");
        }
        std::string summary = summarize_activities();
        prof::reset();
        return summary;
    };

    const std::string serial = run_with_threads(1);
    const std::string two = run_with_threads(2);
    const std::string eight = run_with_threads(8);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, two) << "2 pool workers must reproduce the serial aggregates";
    EXPECT_EQ(serial, eight) << "8 pool workers must reproduce the serial aggregates";
}

TEST_F(ProfTest, TotalsAreIdenticalAcrossStreamCounts) {
    // The same 8 launches of the same kernel, spread over 1 vs. 2 streams.
    // Per-lane attribution differs by design; the kernel totals must not.
    const auto run_with_streams = [](unsigned nstreams) {
        prof::reset();
        prof::enable();
        Device dev(cusim::tiny_properties());
        auto data = upload_iota(dev, 64);
        std::vector<cusim::StreamId> streams(nstreams);
        for (auto& s : streams) s = dev.stream_create();
        for (int i = 0; i < 8; ++i) {
            dev.launch_async(mixed_cfg(2, 32),
                             [&](ThreadCtx& ctx) { return mixed_kernel(ctx, data); },
                             "streamed", streams[i % nstreams]);
        }
        dev.synchronize();
        const auto activities = prof::kernel_activities();
        std::string summary;
        if (activities.size() == 1) {
            const auto& k = activities[0];
            std::size_t lane_launches = 0;
            for (const auto& l : k.lanes) lane_launches += l.launches;
            summary = cupp::trace::format(
                "n=%llu dev=%.17g cc=%llu br=%llu div=%llu lanes=%zu lane_n=%zu",
                static_cast<unsigned long long>(k.launches), k.device_seconds,
                static_cast<unsigned long long>(k.totals.compute_cycles),
                static_cast<unsigned long long>(k.totals.bytes_read),
                static_cast<unsigned long long>(k.totals.divergent_events),
                k.lanes.size(), lane_launches);
        }
        prof::reset();
        return summary;
    };

    const std::string one = run_with_streams(1);
    std::string two = run_with_streams(2);
    EXPECT_FALSE(one.empty());
    // Lane *count* is the only legitimate difference: normalise it away.
    const auto lanes_pos = one.find("lanes=");
    ASSERT_NE(lanes_pos, std::string::npos);
    EXPECT_EQ(one.substr(0, lanes_pos), two.substr(0, two.find("lanes=")));
    EXPECT_NE(one.substr(lanes_pos), "") << one;
    EXPECT_TRUE(one.find("lane_n=8") != std::string::npos) << one;
    EXPECT_TRUE(two.find("lane_n=8") != std::string::npos) << two;
}

// --- transfers --------------------------------------------------------------

TEST_F(ProfTest, TransferTotalsSplitByDirection) {
    prof::enable();
    Device dev(cusim::tiny_properties());
    auto a = dev.malloc_n<std::uint32_t>(256);
    auto b = dev.malloc_n<std::uint32_t>(256);
    const std::vector<std::uint32_t> host(256, 7);
    dev.upload(a, std::span<const std::uint32_t>(host));
    dev.copy_device_to_device(b.addr(), a.addr(), 256 * sizeof(std::uint32_t));
    std::vector<std::uint32_t> back(256, 0);
    dev.download(std::span<std::uint32_t>(back), b);
    EXPECT_EQ(back, host);

    const auto h2d = prof::transfer_totals(CopyKind::HostToDevice);
    EXPECT_EQ(h2d.count, 1u);
    EXPECT_EQ(h2d.bytes, 1024u);
    EXPECT_GT(h2d.seconds, 0.0);
    const auto d2d = prof::transfer_totals(CopyKind::DeviceToDevice);
    EXPECT_EQ(d2d.count, 1u);
    EXPECT_EQ(d2d.bytes, 1024u);
    const auto d2h = prof::transfer_totals(CopyKind::DeviceToHost);
    EXPECT_EQ(d2h.count, 1u);
    EXPECT_EQ(d2h.bytes, 1024u);
    EXPECT_EQ(prof::transfer_totals(CopyKind::HostToHost).count, 0u);
    EXPECT_EQ(tr::metrics().counter("cusim.prof.transfers"), 3u);
}

// --- the report -------------------------------------------------------------

TEST_F(ProfTest, ReportJsonIsValidSortedAndComplete) {
    prof::enable();
    Device dev(cusim::tiny_properties());
    auto data = upload_iota(dev, 32 * 64);
    // "heavy" runs 4x and over more blocks than "light": it must rank first.
    for (int i = 0; i < 4; ++i) {
        dev.launch(mixed_cfg(32, 64),
                   [&](ThreadCtx& ctx) { return mixed_kernel(ctx, data); }, "heavy");
    }
    dev.launch(mixed_cfg(1, 32),
               [&](ThreadCtx& ctx) { return mixed_kernel(ctx, data); }, "light");

    const auto root = cupp::minijson::parse(prof::report_json());
    const auto* p = root.find("prof");
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->find("version")->number(), 1.0);
    ASSERT_NE(p->find("model"), nullptr);
    EXPECT_GT(p->find("model")->find("ridge_cycles_per_byte")->number(), 0.0);

    const auto* kernels = p->find("kernels");
    ASSERT_NE(kernels, nullptr);
    ASSERT_EQ(kernels->array().size(), 2u);
    EXPECT_EQ(kernels->array()[0].find("name")->str(), "heavy");
    EXPECT_EQ(kernels->array()[1].find("name")->str(), "light");
    EXPECT_GE(kernels->array()[0].find("device_seconds")->number(),
              kernels->array()[1].find("device_seconds")->number());
    for (const char* key :
         {"launches", "occupancy", "coalescing_efficiency",
          "divergence_serialization", "arithmetic_intensity_cycles_per_byte",
          "shared_bank_conflicts", "bytes_read", "bytes_written"}) {
        EXPECT_NE(kernels->array()[0].find(key), nullptr) << key;
    }
    EXPECT_TRUE(kernels->array()[0].find("roofline_bound")->is_string());

    const auto* hotspots = p->find("hotspots");
    ASSERT_NE(hotspots, nullptr);
    ASSERT_EQ(hotspots->array().size(), 2u);
    EXPECT_EQ(hotspots->array()[0].find("rank")->number(), 1.0);
    EXPECT_EQ(hotspots->array()[0].find("name")->str(), "heavy");
    const double share_sum = hotspots->array()[0].find("share")->number() +
                             hotspots->array()[1].find("share")->number();
    // Shares are serialized with %g precision, so the sum only closes to ~1e-6.
    EXPECT_NEAR(share_sum, 1.0, 1e-5);

    ASSERT_NE(p->find("transfers"), nullptr);
    EXPECT_EQ(p->find("transfers")->find("h2d")->find("count")->number(), 1.0);
    EXPECT_GT(p->find("total_device_seconds")->number(), 0.0);
    EXPECT_EQ(p->find("api_calls")->find("launch")->number(), 5.0);
}

TEST_F(ProfTest, WriteReportRoundTripsThroughAFile) {
    prof::enable();
    Device dev(cusim::tiny_properties());
    auto data = upload_iota(dev, 64);
    dev.launch(mixed_cfg(2, 32),
               [&](ThreadCtx& ctx) { return mixed_kernel(ctx, data); }, "written");

    EXPECT_FALSE(prof::write_report()) << "no configured path, no default target";
    const std::string path = testing::TempDir() + "cusim_prof_report_test.json";
    ASSERT_TRUE(prof::write_report(path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const auto root = cupp::minijson::parse(text);
    ASSERT_NE(root.find("prof"), nullptr);
    EXPECT_EQ(root.find("prof")->find("kernels")->array().size(), 1u);
}

TEST_F(ProfTest, ResetClearsEverything) {
    prof::enable();
    Device dev(cusim::tiny_properties());
    auto data = upload_iota(dev, 64);
    dev.launch(mixed_cfg(2, 32),
               [&](ThreadCtx& ctx) { return mixed_kernel(ctx, data); }, "cleared");
    ASSERT_FALSE(prof::kernel_activities().empty());
    ASSERT_GT(prof::api_calls(prof::Api::Launch), 0u);

    prof::reset();
    EXPECT_FALSE(prof::armed());
    EXPECT_FALSE(prof::collecting());
    EXPECT_TRUE(prof::kernel_activities().empty());
    EXPECT_EQ(prof::api_calls(prof::Api::Launch), 0u);
    EXPECT_EQ(prof::session_starts(), 0u);
    EXPECT_EQ(prof::session_stops(), 0u);
    EXPECT_EQ(prof::transfer_totals(CopyKind::HostToDevice).count, 0u);
    EXPECT_FALSE(prof::model_snapshot().valid);
    EXPECT_EQ(prof::report_path(), "");
}

TEST_F(ProfTest, LaunchesFeedTraceMetricsAndHistograms) {
    prof::enable();
    Device dev(cusim::tiny_properties());
    auto data = upload_iota(dev, 64);
    dev.launch(mixed_cfg(2, 32),
               [&](ThreadCtx& ctx) { return mixed_kernel(ctx, data); }, "metered");

    EXPECT_EQ(tr::metrics().counter("cusim.prof.launches"), 1u);
    const std::string json = tr::metrics().summary_json();
    EXPECT_NE(json.find("cusim.prof.launch_host_us"), std::string::npos)
        << "per-launch host time must land in the metrics histograms";
}

}  // namespace
