// cupp::vector lazy-memory-copying tests (§4.6): the four-rule state
// machine, the write-detecting proxy, STL behaviour, and nested vectors.
#include <gtest/gtest.h>

#include <numeric>

#include "cupp/cupp.hpp"

namespace {

using cusim::KernelTask;
using cusim::ThreadCtx;

KernelTask double_elements(ThreadCtx& ctx, cupp::deviceT::vector<int>& v) {
    const std::uint64_t gid = ctx.global_id();
    if (gid < v.size()) {
        v.write(ctx, gid, v.read(ctx, gid) * 2);
    }
    co_return;
}
using DoubleK = KernelTask (*)(ThreadCtx&, cupp::deviceT::vector<int>&);

KernelTask sum_elements(ThreadCtx& ctx, const cupp::deviceT::vector<int>& v,
                        cupp::deviceT::vector<long>& out) {
    if (ctx.global_id() == 0) {
        long sum = 0;
        for (std::uint64_t i = 0; i < v.size(); ++i) sum += v.read(ctx, i);
        out.write(ctx, 0, sum);
    }
    co_return;
}
using SumK =
    KernelTask (*)(ThreadCtx&, const cupp::deviceT::vector<int>&, cupp::deviceT::vector<long>&);

TEST(Vector, StlBasics) {
    cupp::vector<int> v;
    EXPECT_TRUE(v.empty());
    v.push_back(1);
    v.push_back(2);
    v.push_back(3);
    EXPECT_EQ(v.size(), 3u);
    EXPECT_EQ(static_cast<int>(v[1]), 2);
    EXPECT_EQ(v.front(), 1);
    EXPECT_EQ(v.back(), 3);
    v.pop_back();
    EXPECT_EQ(v.size(), 2u);
    v.resize(5);
    EXPECT_EQ(v.size(), 5u);
    v.clear();
    EXPECT_TRUE(v.empty());
}

TEST(Vector, IterationAndConstruction) {
    std::vector<int> src(10);
    std::iota(src.begin(), src.end(), 1);
    cupp::vector<int> v(src.begin(), src.end());
    int sum = 0;
    for (int x : v) sum += x;
    EXPECT_EQ(sum, 55);

    cupp::vector<int> filled(4, 7);
    EXPECT_EQ(filled.size(), 4u);
    EXPECT_EQ(static_cast<int>(filled[3]), 7);
}

TEST(Vector, KernelRoundTripThroughReference) {
    cupp::device d;
    cupp::vector<int> v = {1, 2, 3, 4, 5};
    cupp::kernel k(static_cast<DoubleK>(double_elements), cusim::dim3{1}, cusim::dim3{32});
    k(d, v);
    EXPECT_EQ(static_cast<int>(v[0]), 2);
    EXPECT_EQ(static_cast<int>(v[4]), 10);
}

TEST(Vector, LazyCopying_NoReuploadBetweenKernels) {
    // "the developer may pass a vector directly to one or multiple kernels
    // [...] the memory is only transferred if it is really needed" (§4.6).
    cupp::device d;
    cupp::vector<int> v(256, 1);
    cupp::kernel k(static_cast<DoubleK>(double_elements), cusim::dim3{8}, cusim::dim3{32});

    k(d, v);
    EXPECT_EQ(v.uploads(), 1u);
    k(d, v);
    k(d, v);
    // Host never touched the data: still exactly one upload.
    EXPECT_EQ(v.uploads(), 1u);
    EXPECT_EQ(v.downloads(), 0u);

    // First host read triggers exactly one download.
    EXPECT_EQ(static_cast<int>(v[0]), 8);
    EXPECT_EQ(v.downloads(), 1u);
    // More reads are free.
    EXPECT_EQ(static_cast<int>(v[255]), 8);
    EXPECT_EQ(v.downloads(), 1u);
}

TEST(Vector, ConstReferencePassDoesNotMarkHostStale) {
    cupp::device d;
    cupp::vector<int> v(64, 3);
    cupp::vector<long> out = {0};
    cupp::kernel k(static_cast<SumK>(sum_elements), cusim::dim3{1}, cusim::dim3{32});
    k(d, v, out);
    EXPECT_EQ(static_cast<long>(out[0]), 64 * 3);
    EXPECT_TRUE(v.host_data_valid());  // const ref: no dirty() call
    EXPECT_EQ(v.downloads(), 0u);
}

TEST(Vector, HostWriteInvalidatesDeviceCopy) {
    cupp::device d;
    cupp::vector<int> v(32, 1);
    cupp::kernel k(static_cast<DoubleK>(double_elements), cusim::dim3{1}, cusim::dim3{32});
    k(d, v);
    EXPECT_EQ(v.uploads(), 1u);

    v[0] = 99;  // proxy write: host touched -> device stale
    EXPECT_FALSE(v.device_data_valid());
    k(d, v);
    EXPECT_EQ(v.uploads(), 2u);  // re-upload was required
    EXPECT_EQ(static_cast<int>(v[0]), 198);
    EXPECT_EQ(static_cast<int>(v[1]), 4);  // doubled twice
}

TEST(Vector, ProxyReadDoesNotInvalidateDevice) {
    cupp::device d;
    cupp::vector<int> v(32, 5);
    cupp::kernel k(static_cast<DoubleK>(double_elements), cusim::dim3{1}, cusim::dim3{32});
    k(d, v);
    const int x = v[7];  // proxy read only
    EXPECT_EQ(x, 10);
    EXPECT_TRUE(v.device_data_valid());
    k(d, v);
    EXPECT_EQ(v.uploads(), 1u);  // read did not force a re-upload
}

TEST(Vector, CopyHasItsOwnDataset) {
    cupp::device d;
    cupp::vector<int> v = {1, 2, 3};
    cupp::vector<int> copy(v);
    copy[0] = 42;
    EXPECT_EQ(static_cast<int>(v[0]), 1);
    EXPECT_EQ(static_cast<int>(copy[0]), 42);

    // Copying a device-resident vector snapshots the device data.
    cupp::kernel k(static_cast<DoubleK>(double_elements), cusim::dim3{1}, cusim::dim3{32});
    k(d, v);
    cupp::vector<int> copy2(v);
    EXPECT_EQ(static_cast<int>(copy2[1]), 4);
}

TEST(Vector, PassByValueDoesNotReflectChanges) {
    // §6.2.1: "Changes done by the kernel are only reflected back, when an
    // argument is passed as a reference." By value, the kernel works on a
    // copy's device buffer.
    cupp::device d;
    cupp::vector<int> v = {1, 2, 3};

    // Kernel taking the handle *by value*.
    struct Local {
        static KernelTask by_value(ThreadCtx& ctx, cupp::deviceT::vector<int> handle) {
            const std::uint64_t gid = ctx.global_id();
            if (gid < handle.size()) handle.write(ctx, gid, 100);
            co_return;
        }
    };
    cupp::kernel k(
        static_cast<KernelTask (*)(ThreadCtx&, cupp::deviceT::vector<int>)>(Local::by_value),
        cusim::dim3{1}, cusim::dim3{32});
    k(d, v);
    EXPECT_EQ(static_cast<int>(v[0]), 1);  // original untouched
}

KernelTask nested_sum(ThreadCtx& ctx,
                      const cupp::deviceT::vector<cupp::deviceT::vector<int>>& vv,
                      cupp::deviceT::vector<int>& out) {
    const std::uint64_t gid = ctx.global_id();
    if (gid < vv.size()) {
        const auto inner = vv.read(ctx, gid);
        int sum = 0;
        for (std::uint64_t i = 0; i < inner.size(); ++i) sum += inner.read(ctx, i);
        out.write(ctx, gid, sum);
    }
    co_return;
}

TEST(Vector, NestedVectorReachesDevice) {
    // §4.6: "This kind of transformation makes it possible to pass e.g. a
    // two dimensional vector (vector<vector<T>>) to a kernel."
    static_assert(std::is_same_v<cupp::vector<cupp::vector<int>>::device_type,
                                 cupp::deviceT::vector<cupp::deviceT::vector<int>>>);

    cupp::device d;
    cupp::vector<cupp::vector<int>> vv;
    vv.push_back(cupp::vector<int>{1, 2, 3});
    vv.push_back(cupp::vector<int>{10, 20});
    vv.push_back(cupp::vector<int>{});
    cupp::vector<int> out(3, -1);

    using F = KernelTask (*)(ThreadCtx&, const cupp::deviceT::vector<cupp::deviceT::vector<int>>&,
                             cupp::deviceT::vector<int>&);
    cupp::kernel k(static_cast<F>(nested_sum), cusim::dim3{1}, cusim::dim3{32});
    k(d, vv, out);
    EXPECT_EQ(static_cast<int>(out[0]), 6);
    EXPECT_EQ(static_cast<int>(out[1]), 30);
    EXPECT_EQ(static_cast<int>(out[2]), 0);
}

TEST(Vector, MoveLeavesSourceEmpty) {
    cupp::vector<int> v = {1, 2, 3};
    cupp::vector<int> w(std::move(v));
    EXPECT_EQ(w.size(), 3u);
    cupp::vector<int> u;
    u = std::move(w);
    EXPECT_EQ(u.size(), 3u);
    EXPECT_EQ(static_cast<int>(u[2]), 3);
}

TEST(Vector, AtThrowsOutOfRange) {
    cupp::vector<int> v = {1};
    EXPECT_EQ(v.at(0), 1);
    EXPECT_THROW((void)v.at(1), cupp::usage_error);
}

}  // namespace
