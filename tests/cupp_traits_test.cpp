// Compile-time machinery tests: kernel signature traits, const-reference
// detection, stack layout, host/device type mapping, member detection, and
// the constant_array extension.
#include <gtest/gtest.h>

#include "cupp/cupp.hpp"

namespace {

using cusim::KernelTask;
using cusim::ThreadCtx;

// --- kernel_traits / param_traits ---

using K0 = KernelTask (*)(ThreadCtx&);
using K3 = KernelTask (*)(ThreadCtx&, int, const float&, double&);

static_assert(cupp::kernel_traits<K0>::arity == 0);
static_assert(cupp::kernel_traits<K3>::arity == 3);
static_assert(std::is_same_v<cupp::kernel_traits<K3>::arg<0>, int>);
static_assert(std::is_same_v<cupp::kernel_traits<K3>::arg<1>, const float&>);
static_assert(std::is_same_v<cupp::kernel_traits<K3>::arg<2>, double&>);

static_assert(!cupp::param_traits<int>::is_reference);
static_assert(cupp::param_traits<const float&>::is_reference);
static_assert(cupp::param_traits<const float&>::is_const_reference);
static_assert(cupp::param_traits<double&>::is_reference);
static_assert(!cupp::param_traits<double&>::is_const_reference);
static_assert(std::is_same_v<cupp::param_traits<const float&>::value_type, float>);

static_assert(cupp::mutable_reference_count<K0>() == 0);
static_assert(cupp::mutable_reference_count<K3>() == 1);

using KAllMut = KernelTask (*)(ThreadCtx&, int&, float&, double&);
static_assert(cupp::mutable_reference_count<KAllMut>() == 3);

// --- stack layout ---

TEST(Traits, StackOffsetsRespectAlignment) {
    // [int][pad][DeviceAddr for double&][float by value]: the reference slot
    // stores an 8-byte address and must be 8-aligned.
    constexpr auto offs = cupp::detail::stack_offsets<int, double&, float>();
    EXPECT_EQ(offs[0], 0u);
    EXPECT_EQ(offs[1], 8u);   // aligned up from 4
    EXPECT_EQ(offs[2], 16u);
    EXPECT_EQ((cupp::detail::stack_size<int, double&, float>()), 20u);
}

TEST(Traits, ReferenceParamsStoreAnAddress) {
    static_assert(std::is_same_v<cupp::detail::stored_t<int&>, cusim::DeviceAddr>);
    static_assert(std::is_same_v<cupp::detail::stored_t<const int&>, cusim::DeviceAddr>);
    static_assert(std::is_same_v<cupp::detail::stored_t<int>, int>);
}

// --- host/device type mapping (§4.5) ---

struct DevThing {
    int payload;
    using device_type = DevThing;
    using host_type = struct HostThing;
};
struct HostThing {
    using device_type = DevThing;
    using host_type = HostThing;
    int value = 0;
    explicit operator DevThing() const { return DevThing{value * 2}; }
};

static_assert(std::is_same_v<cupp::device_type_t<HostThing>, DevThing>);
static_assert(std::is_same_v<cupp::host_type_t<DevThing>, HostThing>);
static_assert(std::is_same_v<cupp::device_type_t<int>, int>);      // PODs map to themselves
static_assert(std::is_same_v<cupp::host_type_t<float>, float>);

// The 1:1 relation of §4.5, checked both ways.
static_assert(std::is_same_v<cupp::device_type_t<cupp::host_type_t<DevThing>>, DevThing>);

// --- member detection (§4.4) ---

struct WithTransform {
    using device_type = int;
    int transform(const cupp::device&) const { return 7; }
};
struct Plain {};

static_assert(cupp::has_transform<WithTransform>);
static_assert(!cupp::has_transform<Plain>);
static_assert(!cupp::has_dirty<Plain>);
static_assert(!cupp::has_get_device_reference<Plain>);

TEST(Traits, DefaultTransformIsStaticCast) {
    cupp::device d;
    HostThing h;
    h.value = 21;
    // No transform() member: the listing-4.5 default casts to device_type.
    const DevThing dev = cupp::transform_for_device(h, d);
    EXPECT_EQ(dev.payload, 42);
}

TEST(Traits, CustomTransformWins) {
    cupp::device d;
    WithTransform w;
    EXPECT_EQ(cupp::transform_for_device(w, d), 7);
}

TEST(Traits, DefaultDirtyReplacesFromDevice) {
    cupp::device d;
    int value = 1;
    cupp::device_reference<int> ref(d, 99);
    cupp::apply_dirty(value, ref);
    EXPECT_EQ(value, 99);
}

// --- device_reference ---

TEST(DeviceReference, RoundTripAndSet) {
    cupp::device d;
    cupp::device_reference<double> ref(d, 2.5);
    EXPECT_DOUBLE_EQ(ref.get(), 2.5);
    ref.set(7.25);
    EXPECT_DOUBLE_EQ(ref.get(), 7.25);
}

TEST(DeviceReference, SharedOwnershipFreesOnce) {
    cupp::device d;
    const auto used_before = d.sim().memory().used();
    {
        cupp::device_reference<int> a(d, 1);
        auto b = a;  // shared
        EXPECT_EQ(a.addr(), b.addr());
        EXPECT_GT(d.sim().memory().used(), used_before);
    }
    EXPECT_EQ(d.sim().memory().used(), used_before);
}

// --- constant_array (future-work extension) ---

KernelTask weighted_kernel(ThreadCtx& ctx, cusim::ConstantPtr<float> weights,
                           cupp::deviceT::vector<float>& out) {
    const std::uint64_t gid = ctx.global_id();
    if (gid < out.size()) {
        out.write(ctx, gid, weights.read(ctx, gid % weights.size()) * 10.0f);
    }
    co_return;
}

TEST(ConstantArray, KernelReadsThroughTypeTransformation) {
    static_assert(cupp::has_transform<cupp::constant_array<float>>);
    static_assert(std::is_same_v<cupp::device_type_t<cupp::constant_array<float>>,
                                 cusim::ConstantPtr<float>>);

    cupp::device d;
    cupp::constant_array<float> weights(d, {1.0f, 2.0f, 3.0f});
    cupp::vector<float> out(6, 0.0f);
    using F = KernelTask (*)(ThreadCtx&, cusim::ConstantPtr<float>,
                             cupp::deviceT::vector<float>&);
    cupp::kernel k(static_cast<F>(weighted_kernel), cusim::dim3{1}, cusim::dim3{32});
    k(d, weights, out);
    EXPECT_FLOAT_EQ(out[0], 10.0f);
    EXPECT_FLOAT_EQ(out[1], 20.0f);
    EXPECT_FLOAT_EQ(out[2], 30.0f);
    EXPECT_FLOAT_EQ(out[3], 10.0f);
}

TEST(ConstantArray, HostUpdateReachesTheDevice) {
    cupp::device d;
    cupp::constant_array<float> weights(d, {5.0f});
    EXPECT_FLOAT_EQ(weights[0], 5.0f);
    weights.set(0, 9.0f);
    cupp::vector<float> out(1, 0.0f);
    using F = KernelTask (*)(ThreadCtx&, cusim::ConstantPtr<float>,
                             cupp::deviceT::vector<float>&);
    cupp::kernel k(static_cast<F>(weighted_kernel), cusim::dim3{1}, cusim::dim3{32});
    k(d, weights, out);
    EXPECT_FLOAT_EQ(out[0], 90.0f);
}

// --- texture-fetch mode on cupp::vector ---

KernelTask tex_sum_kernel(ThreadCtx& ctx, const cupp::deviceT::vector<float>& v,
                          cupp::deviceT::vector<float>& out) {
    if (ctx.global_id() == 0) {
        float sum = 0.0f;
        for (std::uint64_t i = 0; i < v.size(); ++i) sum += v.read(ctx, i);
        out.write(ctx, 0, sum);
    }
    co_return;
}

TEST(TextureVector, SameResultLessTraffic) {
    cupp::device d;
    cupp::vector<float> v(256, 2.0f);
    cupp::vector<float> out(1, 0.0f);
    using F = KernelTask (*)(ThreadCtx&, const cupp::deviceT::vector<float>&,
                             cupp::deviceT::vector<float>&);
    cupp::kernel k(static_cast<F>(tex_sum_kernel), cusim::dim3{1}, cusim::dim3{32});

    k(d, v, out);
    const auto plain_bytes = k.last_stats().bytes_read;
    EXPECT_FLOAT_EQ(out[0], 512.0f);

    v.set_texture_fetches(true);
    out[0] = 0.0f;
    k(d, v, out);
    const auto tex_bytes = k.last_stats().bytes_read;
    EXPECT_FLOAT_EQ(out[0], 512.0f);
    EXPECT_LT(tex_bytes, plain_bytes / 2);
}

}  // namespace
