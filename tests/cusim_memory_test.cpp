// Global-memory allocator and transfer tests.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cusim/device.hpp"
#include "cusim/global_memory.hpp"

namespace {

using namespace cusim;

TEST(GlobalMemory, AllocateFreeRoundTrip) {
    GlobalMemory mem(1 << 20);
    const DeviceAddr a = mem.allocate(1000);
    EXPECT_TRUE(mem.range_valid(a, 1000));
    EXPECT_EQ(mem.allocation_count(), 1u);
    mem.free(a);
    EXPECT_EQ(mem.allocation_count(), 0u);
    EXPECT_FALSE(mem.range_valid(a, 1));
}

TEST(GlobalMemory, AlignmentIs256) {
    GlobalMemory mem(1 << 20);
    const DeviceAddr a = mem.allocate(1);
    const DeviceAddr b = mem.allocate(1);
    EXPECT_EQ(a % 256, 0u);
    EXPECT_EQ(b % 256, 0u);
    EXPECT_NE(a, b);
}

TEST(GlobalMemory, ExhaustionThrowsMemoryAllocation) {
    GlobalMemory mem(4096);
    (void)mem.allocate(2048);
    try {
        (void)mem.allocate(4096);
        FAIL() << "expected exhaustion";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::MemoryAllocation);
    }
}

TEST(GlobalMemory, FreeListCoalescingAllowsReuse) {
    GlobalMemory mem(4096);
    const DeviceAddr a = mem.allocate(1024);
    const DeviceAddr b = mem.allocate(1024);
    const DeviceAddr c = mem.allocate(1024);
    mem.free(a);
    mem.free(c);
    mem.free(b);  // middle free must merge with both neighbours
    const DeviceAddr big = mem.allocate(4096);
    EXPECT_EQ(big, 0u);
    mem.free(big);
}

TEST(GlobalMemory, DoubleFreeThrows) {
    GlobalMemory mem(4096);
    const DeviceAddr a = mem.allocate(16);
    mem.free(a);
    EXPECT_THROW(mem.free(a), Error);
}

TEST(GlobalMemory, FreeOfNullAddrIsNoop) {
    GlobalMemory mem(4096);
    EXPECT_NO_THROW(mem.free(kNullAddr));
}

TEST(GlobalMemory, OutOfRangeAccessThrows) {
    GlobalMemory mem(4096);
    const DeviceAddr a = mem.allocate(64);
    char buf[128] = {};
    EXPECT_THROW(mem.write(a, buf, 128), Error);
    EXPECT_THROW(mem.read(a + 32, buf, 64), Error);
    EXPECT_NO_THROW(mem.write(a, buf, 64));
}

TEST(GlobalMemory, FreeAllReleasesEverything) {
    GlobalMemory mem(1 << 16);
    for (int i = 0; i < 10; ++i) (void)mem.allocate(1024);
    EXPECT_EQ(mem.allocation_count(), 10u);
    mem.free_all();
    EXPECT_EQ(mem.allocation_count(), 0u);
    EXPECT_EQ(mem.used(), 0u);
    const DeviceAddr a = mem.allocate(1 << 15);
    EXPECT_TRUE(mem.range_valid(a, 1 << 15));
}

TEST(GlobalMemory, Rejects33BitAddressSpace) {
    EXPECT_THROW(GlobalMemory((1ull << 32) + 1), Error);
}

TEST(Device, TypedUploadDownloadRoundTrip) {
    Device dev(tiny_properties());
    std::vector<double> data(517);
    std::iota(data.begin(), data.end(), 0.5);
    auto p = dev.malloc_n<double>(data.size());
    dev.upload(p, std::span<const double>(data));
    std::vector<double> back(data.size());
    dev.download(std::span<double>(back), p);
    EXPECT_EQ(back, data);
    dev.free(p);
}

TEST(Device, TransfersAdvanceHostClockByPcieModel) {
    Device dev(tiny_properties());
    const auto& cost = dev.properties().cost;
    auto p = dev.malloc_n<float>(1 << 16);
    std::vector<float> data(1 << 16, 1.0f);
    const double before = dev.host_time();
    dev.upload(p, std::span<const float>(data));
    const double elapsed = dev.host_time() - before;
    const double expected =
        cost.transfer_latency_s + data.size() * sizeof(float) / cost.pcie_bandwidth_bytes_per_s;
    EXPECT_NEAR(elapsed, expected, 1e-12);
    EXPECT_EQ(dev.bytes_to_device(), data.size() * sizeof(float));
}

TEST(Device, ViewValidatesRange) {
    Device dev(tiny_properties());
    auto p = dev.malloc_n<int>(10);
    EXPECT_NO_THROW((void)dev.view<int>(p.addr(), 10));
    EXPECT_THROW((void)dev.view<int>(p.addr(), 11), Error);
}

TEST(Device, DeviceToDeviceCopyUsesDeviceTime) {
    Device dev(tiny_properties());
    auto a = dev.malloc_n<int>(1024);
    auto b = dev.malloc_n<int>(1024);
    std::vector<int> data(1024, 7);
    dev.upload(a, std::span<const int>(data));
    const double host_before = dev.host_time();
    dev.copy_device_to_device(b.addr(), a.addr(), 1024 * sizeof(int));
    EXPECT_DOUBLE_EQ(dev.host_time(), host_before);   // host not blocked
    EXPECT_GT(dev.device_free_at(), host_before);
    std::vector<int> back(1024);
    dev.download(std::span<int>(back), b);
    EXPECT_EQ(back, data);
}

}  // namespace
