// Warp-vectorized engine tests: dual-form kernels must be observably
// indistinguishable from their per-thread oracle — same outputs, same
// LaunchStats, same divergent-barrier diagnostics, same memcheck messages —
// while running one coroutine per warp. Also covers the FrameCache LRU
// bucket replacement and the CUPP_SIM_ENGINE override plumbing.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "cupp/trace.hpp"
#include "cusim/cusim.hpp"

namespace {

using namespace cusim;

/// Restores the default engine selection when a test scope ends.
struct EngineGuard {
    explicit EngineGuard(EngineMode m) { set_engine_mode(m); }
    ~EngineGuard() { clear_engine_mode(); }
};

void expect_stats_eq(const LaunchStats& a, const LaunchStats& b) {
    EXPECT_EQ(a.blocks, b.blocks);
    EXPECT_EQ(a.warps, b.warps);
    EXPECT_EQ(a.threads, b.threads);
    EXPECT_EQ(a.threads_per_block, b.threads_per_block);
    EXPECT_EQ(a.compute_cycles, b.compute_cycles);
    EXPECT_EQ(a.stall_cycles, b.stall_cycles);
    EXPECT_EQ(a.bytes_read, b.bytes_read);
    EXPECT_EQ(a.bytes_written, b.bytes_written);
    EXPECT_EQ(a.useful_bytes_read, b.useful_bytes_read);
    EXPECT_EQ(a.useful_bytes_written, b.useful_bytes_written);
    EXPECT_EQ(a.divergent_events, b.divergent_events);
    EXPECT_EQ(a.branch_evaluations, b.branch_evaluations);
    EXPECT_EQ(a.shared_accesses, b.shared_accesses);
    EXPECT_EQ(a.shared_bank_conflicts, b.shared_bank_conflicts);
    EXPECT_EQ(a.syncthreads_count, b.syncthreads_count);
    EXPECT_EQ(a.resident_blocks_per_mp, b.resident_blocks_per_mp);
    EXPECT_DOUBLE_EQ(a.device_seconds, b.device_seconds);
}

// --- iota: the simplest dual-form kernel -----------------------------------

KernelTask iota_thread(ThreadCtx& ctx, DevicePtr<std::uint32_t> out) {
    const std::uint64_t gid = ctx.global_id();
    if (gid < out.size()) out.write(ctx, gid, static_cast<std::uint32_t>(gid * 7));
    co_return;
}

KernelTask iota_warp(WarpCtx& w, DevicePtr<std::uint32_t> out) {
    std::uint64_t idx[kWarpSize];
    std::uint32_t v[kWarpSize];
    std::uint32_t in_range = 0;
    for (unsigned l = 0; l < w.lanes(); ++l) {
        idx[l] = w.global_id(l);
        v[l] = static_cast<std::uint32_t>(idx[l] * 7);
        if (idx[l] < out.size()) in_range |= 1u << l;
    }
    w.push_active(in_range);
    w.write(out, idx, v);
    w.pop_active();
    co_return;
}

TEST(WarpEngine, IotaMatchesThreadEngineBitForBit) {
    std::vector<std::uint32_t> host_w, host_t;
    LaunchStats st_w, st_t;
    for (const EngineMode mode : {EngineMode::Warp, EngineMode::Thread}) {
        EngineGuard guard(mode);
        Device dev(tiny_properties());
        auto out = dev.malloc_n<std::uint32_t>(1000);
        LaunchConfig cfg{dim3{8}, dim3{128}};
        KernelSpec spec([&](ThreadCtx& ctx) { return iota_thread(ctx, out); },
                        [&](WarpCtx& w) { return iota_warp(w, out); });
        auto stats = dev.launch(cfg, spec, "iota");
        std::vector<std::uint32_t> host(1000);
        dev.download(std::span<std::uint32_t>(host), out);
        (mode == EngineMode::Warp ? host_w : host_t) = std::move(host);
        (mode == EngineMode::Warp ? st_w : st_t) = stats;
    }
    EXPECT_EQ(host_w, host_t);
    for (std::uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(host_w[i], i * 7) << i;
    expect_stats_eq(st_w, st_t);
}

// --- the dispatcher actually switches engines ------------------------------

TEST(WarpEngine, ModeOverrideSelectsTheForm) {
    // Forms that deliberately disagree, so the dispatch is observable.
    Device dev(tiny_properties());
    auto out = dev.malloc_n<std::uint32_t>(32);
    LaunchConfig cfg{dim3{1}, dim3{32}};
    KernelSpec spec(
        [&](ThreadCtx& ctx) -> KernelTask {
            out.write(ctx, ctx.global_id(), 1u);
            co_return;
        },
        [&](WarpCtx& w) -> KernelTask {
            std::uint64_t idx[kWarpSize];
            std::uint32_t v[kWarpSize];
            for (unsigned l = 0; l < w.lanes(); ++l) {
                idx[l] = w.global_id(l);
                v[l] = 2u;
            }
            w.write(out, idx, v);
            co_return;
        });
    std::vector<std::uint32_t> host(32);
    {
        EngineGuard guard(EngineMode::Warp);
        dev.launch(cfg, spec, "which");
        dev.download(std::span<std::uint32_t>(host), out);
        for (auto x : host) EXPECT_EQ(x, 2u);
    }
    {
        EngineGuard guard(EngineMode::Thread);
        dev.launch(cfg, spec, "which");
        dev.download(std::span<std::uint32_t>(host), out);
        for (auto x : host) EXPECT_EQ(x, 1u);
    }
    // A spec with no warp form runs the thread form under either mode.
    {
        EngineGuard guard(EngineMode::Warp);
        KernelSpec thread_only([&](ThreadCtx& ctx) -> KernelTask {
            out.write(ctx, ctx.global_id(), 3u);
            co_return;
        });
        dev.launch(cfg, thread_only, "thread-only");
        dev.download(std::span<std::uint32_t>(host), out);
        for (auto x : host) EXPECT_EQ(x, 3u);
    }
}

// --- nested divergence ------------------------------------------------------

KernelTask nest_thread(ThreadCtx& ctx, DevicePtr<std::uint32_t> in,
                       DevicePtr<std::uint32_t> out) {
    const std::uint64_t gid = ctx.global_id();
    std::uint32_t v = in.read(ctx, gid);
    if (ctx.branch((v & 1u) == 0)) {
        v /= 2;
        if (ctx.branch((v & 2u) != 0)) v += 100;
    } else {
        v = v * 3 + 1;
    }
    out.write(ctx, gid, v);
    co_return;
}

KernelTask nest_warp(WarpCtx& w, DevicePtr<std::uint32_t> in,
                     DevicePtr<std::uint32_t> out) {
    std::uint64_t idx[kWarpSize];
    std::uint32_t v[kWarpSize];
    for (unsigned l = 0; l < w.lanes(); ++l) idx[l] = w.global_id(l);
    w.read(in, idx, v);

    std::uint32_t even = 0;
    for (unsigned l = 0; l < w.lanes(); ++l) {
        if ((v[l] & 1u) == 0) even |= 1u << l;
    }
    w.push_active(w.ballot(even));
    {
        for (std::uint32_t m = w.active(); m != 0; m &= m - 1) {
            v[std::countr_zero(m)] /= 2;
        }
        std::uint32_t inner = 0;
        for (std::uint32_t m = w.active(); m != 0; m &= m - 1) {
            const unsigned l = std::countr_zero(m);
            if ((v[l] & 2u) != 0) inner |= 1u << l;
        }
        w.push_active(w.ballot(inner));
        for (std::uint32_t m = w.active(); m != 0; m &= m - 1) {
            v[std::countr_zero(m)] += 100;
        }
        w.pop_active();
    }
    w.else_active();
    for (std::uint32_t m = w.active(); m != 0; m &= m - 1) {
        const unsigned l = std::countr_zero(m);
        v[l] = v[l] * 3 + 1;
    }
    w.pop_active();

    w.write(out, idx, v);
    co_return;
}

TEST(WarpEngine, NestedDivergenceMatchesThreadEngine) {
    std::vector<std::uint32_t> host_w, host_t;
    LaunchStats st_w, st_t;
    for (const EngineMode mode : {EngineMode::Warp, EngineMode::Thread}) {
        EngineGuard guard(mode);
        Device dev(tiny_properties());
        const std::uint64_t n = 4 * 96;  // partial tail warp in every block
        auto in = dev.malloc_n<std::uint32_t>(n);
        auto out = dev.malloc_n<std::uint32_t>(n);
        std::vector<std::uint32_t> seed(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            seed[i] = static_cast<std::uint32_t>(i * 2654435761u + 12345u);
        }
        dev.upload(in, std::span<const std::uint32_t>(seed));
        LaunchConfig cfg{dim3{4}, dim3{96}};
        KernelSpec spec([&](ThreadCtx& ctx) { return nest_thread(ctx, in, out); },
                        [&](WarpCtx& w) { return nest_warp(w, in, out); });
        auto stats = dev.launch(cfg, spec, "nest");
        std::vector<std::uint32_t> host(n);
        dev.download(std::span<std::uint32_t>(host), out);
        (mode == EngineMode::Warp ? host_w : host_t) = std::move(host);
        (mode == EngineMode::Warp ? st_w : st_t) = stats;
    }
    EXPECT_EQ(host_w, host_t);
    expect_stats_eq(st_w, st_t);
    EXPECT_GT(st_w.divergent_events, 0u);
    EXPECT_EQ(st_w.branch_evaluations, st_t.branch_evaluations);
}

// --- shared memory + __syncthreads across warps ----------------------------

KernelTask rotate_thread(ThreadCtx& ctx, DevicePtr<float> out) {
    const unsigned n = ctx.block_dim().x;
    auto tile = ctx.shared_array<float>(n);
    const unsigned tid = ctx.thread_idx().x;
    tile.write(ctx, tid, static_cast<float>(tid) * 1.5f);
    co_await ctx.syncthreads();
    const float v = tile.read(ctx, (tid + 1) % n);
    out.write(ctx, ctx.global_id(), v);
    co_return;
}

KernelTask rotate_warp(WarpCtx& w, DevicePtr<float> out) {
    const unsigned n = w.block_dim().x;
    auto tile = w.shared_array<float>(n);
    std::uint64_t idx[kWarpSize];
    float v[kWarpSize];
    for (unsigned l = 0; l < w.lanes(); ++l) {
        idx[l] = w.lane_tid(l);
        v[l] = static_cast<float>(w.lane_tid(l)) * 1.5f;
    }
    w.write(tile, idx, v);
    co_await w.syncthreads();
    for (unsigned l = 0; l < w.lanes(); ++l) idx[l] = (w.lane_tid(l) + 1) % n;
    w.read(tile, idx, v);
    for (unsigned l = 0; l < w.lanes(); ++l) idx[l] = w.global_id(l);
    w.write(out, idx, v);
    co_return;
}

TEST(WarpEngine, SharedTileRotationCrossesWarps) {
    std::vector<float> host_w, host_t;
    LaunchStats st_w, st_t;
    for (const EngineMode mode : {EngineMode::Warp, EngineMode::Thread}) {
        EngineGuard guard(mode);
        Device dev(tiny_properties());
        LaunchConfig cfg{dim3{2}, dim3{64}};
        cfg.shared_bytes = 64 * sizeof(float);
        auto out = dev.malloc_n<float>(cfg.total_threads());
        KernelSpec spec([&](ThreadCtx& ctx) { return rotate_thread(ctx, out); },
                        [&](WarpCtx& w) { return rotate_warp(w, out); });
        auto stats = dev.launch(cfg, spec, "rotate");
        std::vector<float> host(cfg.total_threads());
        dev.download(std::span<float>(host), out);
        (mode == EngineMode::Warp ? host_w : host_t) = std::move(host);
        (mode == EngineMode::Warp ? st_w : st_t) = stats;
    }
    EXPECT_EQ(host_w, host_t);
    expect_stats_eq(st_w, st_t);
    EXPECT_EQ(st_w.syncthreads_count, 2u);  // one episode per block
    // Lane 31 of warp 0 reads tile[32] — written by warp 1, proving the
    // barrier actually publishes across warp coroutines.
    EXPECT_FLOAT_EQ(host_w[31], 32.0f * 1.5f);
    EXPECT_FLOAT_EQ(host_w[63], 0.0f);  // wraps to tile[0]
}

// --- divergent __syncthreads diagnosis -------------------------------------

TEST(WarpEngine, DivergentBarrierMessageMatchesThreadEngine) {
    std::string msg_w, msg_t;
    for (const EngineMode mode : {EngineMode::Warp, EngineMode::Thread}) {
        EngineGuard guard(mode);
        Device dev(tiny_properties());
        LaunchConfig cfg{dim3{1}, dim3{32}};
        KernelSpec spec(
            [&](ThreadCtx& ctx) -> KernelTask {
                if (ctx.thread_idx().x % 2 == 0) co_return;  // evens never arrive
                co_await ctx.syncthreads();
            },
            [&](WarpCtx& w) -> KernelTask {
                std::uint32_t evens = 0;
                for (unsigned l = 0; l < w.lanes(); ++l) {
                    if (w.lane_tid(l) % 2 == 0) evens |= 1u << l;
                }
                w.exit_lanes(evens);
                co_await w.syncthreads();
            });
        try {
            dev.launch(cfg, spec, "divergent");
            FAIL() << "divergent barrier was not diagnosed";
        } catch (const Error& e) {
            EXPECT_EQ(e.code(), ErrorCode::LaunchFailure);
            (mode == EngineMode::Warp ? msg_w : msg_t) = e.what();
        }
    }
    EXPECT_EQ(msg_w, msg_t);
    EXPECT_NE(msg_w.find("16 of 32 threads (divergent barrier)"), std::string::npos)
        << msg_w;
}

// --- early exit -------------------------------------------------------------

TEST(WarpEngine, AllLanesExitedWarpRetiresCleanly) {
    EngineGuard guard(EngineMode::Warp);
    Device dev(tiny_properties());
    LaunchConfig cfg{dim3{1}, dim3{96}};  // 3 warps
    auto out = dev.malloc_n<std::uint32_t>(96);
    // After the first (well-formed) barrier, warps 1-2 exit all lanes. Their
    // next syncthreads must be a no-op (no active lanes), their batched
    // write must touch nothing, and they must retire cleanly — while warp 0,
    // arriving at that second barrier alone, is the textbook divergent
    // barrier the engine has to diagnose exactly like the thread engine:
    // 32 of 96 threads arrived.
    KernelSpec spec(KernelEntry{}, [&](WarpCtx& w) -> KernelTask {
        co_await w.syncthreads();
        if (w.warp_index() > 0) {
            w.exit_lanes(w.full_mask());
        }
        co_await w.syncthreads();  // no-op for exited warps (active == 0)
        std::uint64_t idx[kWarpSize];
        std::uint32_t v[kWarpSize];
        for (unsigned l = 0; l < w.lanes(); ++l) {
            idx[l] = w.global_id(l);
            v[l] = 7u;
        }
        w.write(out, idx, v);  // touches no lanes in the exited warps
        co_return;
    });
    try {
        dev.launch(cfg, spec, "exit");
        FAIL() << "warp 0 barriering alone was not diagnosed";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::LaunchFailure);
        EXPECT_NE(std::string(e.what())
                      .find("32 of 96 threads (divergent barrier)"),
                  std::string::npos)
            << e.what();
    }
}

TEST(WarpEngine, ExitLanesSkipsRetiredLanesInBatchedOps) {
    EngineGuard guard(EngineMode::Warp);
    Device dev(tiny_properties());
    LaunchConfig cfg{dim3{1}, dim3{64}};  // 2 warps, no barriers anywhere
    auto out = dev.malloc_n<std::uint32_t>(64);
    std::vector<std::uint32_t> zero(64, 0u);
    dev.upload(out, std::span<const std::uint32_t>(zero));
    KernelSpec spec(KernelEntry{}, [&](WarpCtx& w) -> KernelTask {
        // Odd lanes leave immediately; the batched write below must only
        // touch even lanes. The second warp exits entirely mid-body.
        std::uint32_t odds = 0;
        for (unsigned l = 0; l < w.lanes(); ++l) {
            if (w.lane_tid(l) % 2 != 0) odds |= 1u << l;
        }
        w.exit_lanes(odds);
        if (w.warp_index() == 1) w.exit_lanes(w.full_mask());
        std::uint64_t idx[kWarpSize];
        std::uint32_t v[kWarpSize];
        for (unsigned l = 0; l < w.lanes(); ++l) {
            idx[l] = w.global_id(l);
            v[l] = 9u;
        }
        w.write(out, idx, v);
        co_return;
    });
    auto stats = dev.launch(cfg, spec, "exit-lanes");
    std::vector<std::uint32_t> host(64);
    dev.download(std::span<std::uint32_t>(host), out);
    for (unsigned i = 0; i < 64; ++i) {
        EXPECT_EQ(host[i], (i < 32 && i % 2 == 0) ? 9u : 0u) << i;
    }
    // Only the 16 surviving lanes of warp 0 paid for the write.
    EXPECT_EQ(stats.useful_bytes_written, 16u * sizeof(std::uint32_t));
}

// --- memcheck parity --------------------------------------------------------

TEST(WarpEngine, MemcheckStrictMessageMatchesThreadEngine) {
    memcheck::enable();
    memcheck::reset();
    memcheck::set_strict(true);
    std::string msg_w, msg_t;
    for (const EngineMode mode : {EngineMode::Warp, EngineMode::Thread}) {
        EngineGuard guard(mode);
        Device dev(tiny_properties());
        auto out = dev.malloc_n<std::uint32_t>(16);
        LaunchConfig cfg{dim3{1}, dim3{32}};
        KernelSpec spec(
            [&](ThreadCtx& ctx) -> KernelTask {
                out.write(ctx, ctx.global_id(), 1u);  // lanes 16.. out of range
                co_return;
            },
            [&](WarpCtx& w) -> KernelTask {
                std::uint64_t idx[kWarpSize];
                std::uint32_t v[kWarpSize];
                for (unsigned l = 0; l < w.lanes(); ++l) {
                    idx[l] = w.global_id(l);
                    v[l] = 1u;
                }
                w.write(out, idx, v);
                co_return;
            });
        try {
            dev.launch(cfg, spec, "oob");
            FAIL() << "strict memcheck did not throw";
        } catch (const Error& e) {
            (mode == EngineMode::Warp ? msg_w : msg_t) = e.what();
        }
    }
    memcheck::set_strict(false);
    memcheck::disable();
    memcheck::reset();
    EXPECT_EQ(msg_w, msg_t);
    EXPECT_FALSE(msg_w.empty());
}

// --- FrameCache LRU + counters ---------------------------------------------

TEST(FrameCache, HitsRecycleExactSizes) {
    detail::FrameCache fc;
    void* a = ::operator new(64);
    fc.give(a, 64);
    void* b = fc.take(64);
    EXPECT_EQ(b, a);  // recycled, not a fresh allocation
    EXPECT_EQ(fc.hits, 1u);
    EXPECT_EQ(fc.misses, 0u);
    void* c = fc.take(64);  // bucket now empty -> miss
    EXPECT_EQ(fc.misses, 1u);
    ::operator delete(b);
    ::operator delete(c);
}

TEST(FrameCache, LruBucketRetargetsOnExhaustion) {
    detail::FrameCache fc;
    // Fill all four buckets with distinct sizes.
    for (std::size_t sz : {32u, 48u, 64u, 80u}) fc.give(::operator new(sz), sz);
    // Touch 32 so it is recently used; 48 becomes the LRU.
    ::operator delete(fc.take(32));
    EXPECT_EQ(fc.evicts, 0u);
    // A fifth size must claim the LRU bucket, evicting its cached frame —
    // the old behaviour leaked every 5th+ size to the global allocator
    // forever and this size would never hit.
    fc.give(::operator new(96), 96);
    EXPECT_EQ(fc.evicts, 1u);
    void* p = fc.take(96);
    EXPECT_EQ(fc.hits, 2u);  // the retargeted bucket serves the new size
    ::operator delete(p);
    // The evicted size misses (its bucket is gone), the survivors still hit.
    ::operator delete(fc.take(48));
    EXPECT_EQ(fc.misses, 1u);
    ::operator delete(fc.take(64));
    EXPECT_EQ(fc.hits, 3u);
}

TEST(FrameCache, FlushPublishesCounterTrio) {
    auto& m = cupp::trace::metrics();
    const auto hit0 = m.counter("cusim.framecache.hit");
    const auto miss0 = m.counter("cusim.framecache.miss");
    const auto evict0 = m.counter("cusim.framecache.evict");
    {
        detail::FrameCache fc;
        for (std::size_t sz : {3200u, 3216u, 3232u, 3248u}) {
            fc.give(::operator new(sz), sz);
        }
        fc.give(::operator new(3264), 3264);   // evicts the LRU bucket
        ::operator delete(fc.take(3264));      // hit
        ::operator delete(fc.take(3200));      // miss (3200 was evicted)
        // Destructor flushes whatever the periodic flush has not.
    }
    EXPECT_EQ(m.counter("cusim.framecache.hit"), hit0 + 1);
    EXPECT_EQ(m.counter("cusim.framecache.miss"), miss0 + 1);
    EXPECT_EQ(m.counter("cusim.framecache.evict"), evict0 + 1);
}

TEST(FrameCache, ManyKernelFrameSizesKeepHitting) {
    // End-to-end: cycling through more kernel frame sizes than buckets must
    // still mostly hit (each size reclaims a bucket on its next block),
    // which is exactly what the LRU replacement buys over the fixed scheme.
    EngineGuard guard(EngineMode::Thread);
    detail::FrameCache& fc = detail::FrameCache::local();
    fc.flush_metrics();
    auto& m = cupp::trace::metrics();
    const auto hit0 = m.counter("cusim.framecache.hit");
    Device dev(tiny_properties());
    auto out = dev.malloc_n<std::uint32_t>(64);
    LaunchConfig cfg{dim3{1}, dim3{64}};
    for (int round = 0; round < 3; ++round) {
        dev.launch(cfg, [&](ThreadCtx& ctx) { return iota_thread(ctx, out); }, "a");
    }
    fc.flush_metrics();
    // Rounds 2 and 3 recycle round 1's frames: 64 threads x 2 rounds at
    // minimum (other tests in this binary share the thread-local cache, so
    // only assert the lower bound).
    EXPECT_GE(m.counter("cusim.framecache.hit"), hit0 + 128);
}

}  // namespace
