// The GPU pursuit plugin against its CPU reference: identical decision
// logic, identical kinematics, host-side captures in both — the flocks must
// agree bit for bit. Plus the divergence profile the scenario exists to
// probe.
#include <gtest/gtest.h>

#include "gpusteer/pursuit_plugin_gpu.hpp"
#include "gpusteer/registry.hpp"
#include "steer/steer.hpp"

namespace {

using gpusteer::GpuPursuitPlugin;
using steer::Agent;
using steer::PursuitPlugin;
using steer::WorldSpec;

void expect_same_flock(const std::vector<Agent>& a, const std::vector<Agent>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].position, b[i].position) << "agent " << i;
        EXPECT_EQ(a[i].forward, b[i].forward) << "agent " << i;
        EXPECT_FLOAT_EQ(a[i].speed, b[i].speed) << "agent " << i;
    }
}

TEST(GpuPursuit, MatchesCpuReferenceBitForBit) {
    WorldSpec spec;
    spec.agents = 96;
    PursuitPlugin cpu;
    cpu.open(spec);
    GpuPursuitPlugin gpu;
    gpu.open(spec);
    EXPECT_EQ(gpu.predators(), cpu.predators());
    for (int step = 0; step < 10; ++step) {
        cpu.step();
        gpu.step();
    }
    expect_same_flock(cpu.snapshot(), gpu.snapshot());
    EXPECT_EQ(gpu.captures(), cpu.captures());
}

TEST(GpuPursuit, CapturesAgreeOverALongRun) {
    WorldSpec spec;
    spec.agents = 64;
    PursuitPlugin cpu;
    cpu.open(spec);
    GpuPursuitPlugin gpu;
    gpu.open(spec);
    int first_capture_cpu = -1, first_capture_gpu = -1;
    for (int step = 0; step < 900; ++step) {
        cpu.step();
        gpu.step();
        if (first_capture_cpu < 0 && cpu.captures() > 0) first_capture_cpu = step;
        if (first_capture_gpu < 0 && gpu.captures() > 0) first_capture_gpu = step;
        if (first_capture_cpu >= 0 && first_capture_gpu >= 0) break;
    }
    EXPECT_EQ(first_capture_cpu, first_capture_gpu);
    EXPECT_GE(first_capture_gpu, 0) << "no capture within 900 steps";
    expect_same_flock(cpu.snapshot(), gpu.snapshot());
}

TEST(GpuPursuit, HeavilyDivergentByDesign) {
    // Role branches, evade-vs-wander, obstacle overrides: this kernel is
    // the §6.3.1 worst case. Its divergence *rate* should dwarf the
    // Boids neighbor-search kernels'.
    WorldSpec spec;
    spec.agents = 256;
    GpuPursuitPlugin gpu;
    gpu.open(spec);
    for (int i = 0; i < 3; ++i) gpu.step();
    EXPECT_GT(gpu.branch_evaluations(), 0u);
    EXPECT_GT(gpu.divergent_warp_steps(), 0u);
    const double rate = static_cast<double>(gpu.divergent_warp_steps()) /
                        (static_cast<double>(gpu.branch_evaluations()) / cusim::kWarpSize);
    EXPECT_GT(rate, 0.05);  // divergence-heavy, as intended
}

TEST(GpuPursuit, StateStaysOnDeviceBetweenSteps) {
    WorldSpec spec;
    spec.agents = 128;
    GpuPursuitPlugin gpu;
    gpu.open(spec);
    auto& sim = cusim::Registry::instance().device(0);
    gpu.step();
    const auto base = sim.bytes_to_device();
    // Without captures, subsequent steps upload nothing but kernel handles.
    for (int i = 0; i < 3; ++i) gpu.step();
    if (gpu.captures() == 0) {
        EXPECT_LT(sim.bytes_to_device() - base, 3u * 1024u);
    }
}

TEST(GpuPursuit, RegisteredAndRunnableThroughTheDemo) {
    steer::PlugInRegistry registry;
    gpusteer::register_all_plugins(registry);
    steer::Demo demo(registry);
    WorldSpec spec;
    spec.agents = 96;
    ASSERT_TRUE(demo.select("pursuit-gpu", spec));
    demo.run(3);
    EXPECT_GT(demo.update_rate(), 0.0);
    EXPECT_EQ(demo.active().draw_matrices().size(), spec.agents);
    demo.close();
}

}  // namespace
