// Tests of the raw CUDA-1.0-style runtime API (§3.2): device management,
// memory management with error codes, and the three-step launch protocol
// (ConfigureCall -> SetupArgument -> Launch).
#include <gtest/gtest.h>

#include <cstring>

#include "cusim/cusim.hpp"

namespace {

using namespace cusim;
using namespace cusim::rt;

class RuntimeApiTest : public ::testing::Test {
protected:
    void SetUp() override { Registry::instance().reset(); }
    void TearDown() override { Registry::instance().reset(); }
};

TEST_F(RuntimeApiTest, DeviceManagement) {
    int count = 0;
    ASSERT_EQ(cusimGetDeviceCount(&count), ErrorCode::Success);
    EXPECT_GE(count, 1);

    // Implicit device 0 before any cusimSetDevice (§3.2.1).
    int dev = -1;
    ASSERT_EQ(cusimGetDevice(&dev), ErrorCode::Success);
    EXPECT_EQ(dev, 0);

    EXPECT_EQ(cusimSetDevice(99), ErrorCode::InvalidDevice);
    EXPECT_EQ(cusimSetDevice(0), ErrorCode::Success);

    DeviceProperties props;
    ASSERT_EQ(cusimGetDeviceProperties(&props, 0), ErrorCode::Success);
    EXPECT_EQ(props.multiprocessors, 12u);
    EXPECT_EQ(cusimGetDeviceProperties(&props, 99), ErrorCode::InvalidDevice);
    EXPECT_EQ(cusimGetDeviceProperties(nullptr, 0), ErrorCode::InvalidValue);
}

TEST_F(RuntimeApiTest, ChooseDeviceByProperties) {
    DeviceProperties request;
    request.total_global_mem = 1;
    int dev = -1;
    ASSERT_EQ(cusimChooseDevice(&dev, &request), ErrorCode::Success);
    EXPECT_EQ(dev, 0);

    request.total_global_mem = 1ull << 40;  // nothing has a terabyte
    EXPECT_EQ(cusimChooseDevice(&dev, &request), ErrorCode::InvalidDevice);
    EXPECT_EQ(cusimChooseDevice(nullptr, &request), ErrorCode::InvalidValue);
}

TEST_F(RuntimeApiTest, MallocFreeMemcpyRoundTrip) {
    DeviceAddr ptr = kNullAddr;
    ASSERT_EQ(cusimMalloc(&ptr, 1024), ErrorCode::Success);
    ASSERT_NE(ptr, kNullAddr);

    char out[16] = {};
    ASSERT_EQ(cusimMemcpyToDevice(ptr, "hello, device!", 15), ErrorCode::Success);
    ASSERT_EQ(cusimMemcpyToHost(out, ptr, 15), ErrorCode::Success);
    EXPECT_STREQ(out, "hello, device!");

    DeviceAddr ptr2 = kNullAddr;
    ASSERT_EQ(cusimMalloc(&ptr2, 1024), ErrorCode::Success);
    ASSERT_EQ(cusimMemcpyDeviceToDevice(ptr2, ptr, 15), ErrorCode::Success);
    std::memset(out, 0, sizeof(out));
    ASSERT_EQ(cusimMemcpyToHost(out, ptr2, 15), ErrorCode::Success);
    EXPECT_STREQ(out, "hello, device!");

    EXPECT_EQ(cusimFree(ptr), ErrorCode::Success);
    EXPECT_EQ(cusimFree(ptr2), ErrorCode::Success);
    EXPECT_EQ(cusimFree(ptr), ErrorCode::InvalidDevicePointer);  // double free
}

TEST_F(RuntimeApiTest, MemcpyErrors) {
    EXPECT_EQ(cusimMemcpyToDevice(0, nullptr, 4), ErrorCode::InvalidValue);
    EXPECT_EQ(cusimMemcpyToHost(nullptr, 0, 4), ErrorCode::InvalidValue);
    // Copy outside any allocation.
    char buf[4] = {};
    EXPECT_EQ(cusimMemcpyToHost(buf, 12345, 4), ErrorCode::InvalidDevicePointer);
    // Host-to-host flavour of the void* API.
    char dst[4] = {};
    EXPECT_EQ(cusimMemcpy(dst, "abc", 4, CopyKind::HostToHost), ErrorCode::Success);
    EXPECT_STREQ(dst, "abc");
    EXPECT_EQ(cusimMemcpy(dst, "abc", 4, CopyKind::HostToDevice),
              ErrorCode::InvalidMemcpyDirection);
}

TEST_F(RuntimeApiTest, OutOfMemoryReturnsCode) {
    DeviceAddr ptr = kNullAddr;
    EXPECT_EQ(cusimMalloc(&ptr, 1ull << 40), ErrorCode::MemoryAllocation);
    // The error is also latched for cusimGetLastError.
    EXPECT_EQ(cusimMalloc(&ptr, 64), ErrorCode::Success);
    EXPECT_EQ(cusimGetLastError(), ErrorCode::Success);
    EXPECT_EQ(cusimFree(ptr), ErrorCode::Success);
}

// --- the three-step launch protocol (§3.2.2) ---

KernelTask add_kernel(ThreadCtx& ctx, Device& dev, const std::byte* stack) {
    // Hand-unpacked trampoline: [int a][int b][DeviceAddr out].
    int a = 0, b = 0;
    DeviceAddr out = kNullAddr;
    std::memcpy(&a, stack, 4);
    std::memcpy(&b, stack + 4, 4);
    std::memcpy(&out, stack + 8, 8);
    if (ctx.global_id() == 0) {
        const int sum = a + b;
        std::memcpy(dev.memory().raw(out), &sum, 4);
    }
    co_return;
}

TEST_F(RuntimeApiTest, ThreeStepLaunchProtocol) {
    const KernelHandle handle =
        register_kernel([](ThreadCtx& ctx, Device& dev, const std::byte* stack) {
            return add_kernel(ctx, dev, stack);
        });

    DeviceAddr out = kNullAddr;
    ASSERT_EQ(cusimMalloc(&out, 4), ErrorCode::Success);

    // 1. configure, 2. push arguments, 3. launch.
    ASSERT_EQ(cusimConfigureCall(dim3{2}, dim3{32}), ErrorCode::Success);
    const int a = 20, b = 22;
    ASSERT_EQ(cusimSetupArgument(&a, 4, 0), ErrorCode::Success);
    ASSERT_EQ(cusimSetupArgument(&b, 4, 4), ErrorCode::Success);
    ASSERT_EQ(cusimSetupArgument(&out, 8, 8), ErrorCode::Success);
    ASSERT_EQ(cusimLaunch(handle), ErrorCode::Success);

    int result = 0;
    ASSERT_EQ(cusimMemcpyToHost(&result, out, 4), ErrorCode::Success);
    EXPECT_EQ(result, 42);
    EXPECT_EQ(cusimLastLaunchStats().threads, 64u);
    ASSERT_EQ(cusimFree(out), ErrorCode::Success);
}

TEST_F(RuntimeApiTest, LaunchProtocolMisuse) {
    const KernelHandle handle =
        register_kernel([](ThreadCtx& ctx, Device&, const std::byte*) -> KernelTask {
            (void)ctx;
            co_return;
        });

    // Launch without configuration.
    EXPECT_EQ(cusimLaunch(handle), ErrorCode::InvalidConfiguration);
    // SetupArgument without configuration.
    const int x = 1;
    EXPECT_EQ(cusimSetupArgument(&x, 4, 0), ErrorCode::InvalidConfiguration);
    // Argument past the 256-byte kernel stack.
    ASSERT_EQ(cusimConfigureCall(dim3{1}, dim3{1}), ErrorCode::Success);
    EXPECT_EQ(cusimSetupArgument(&x, 4, kKernelStackSize), ErrorCode::InvalidValue);
    // Invalid geometry is rejected at configure time.
    EXPECT_EQ(cusimConfigureCall(dim3{1}, dim3{1024}), ErrorCode::InvalidConfiguration);
    // Null kernel handle.
    ASSERT_EQ(cusimConfigureCall(dim3{1}, dim3{1}), ErrorCode::Success);
    EXPECT_EQ(cusimLaunch(nullptr), ErrorCode::InvalidValue);
    // The configuration is consumed by a successful launch.
    ASSERT_EQ(cusimConfigureCall(dim3{1}, dim3{1}), ErrorCode::Success);
    ASSERT_EQ(cusimLaunch(handle), ErrorCode::Success);
    EXPECT_EQ(cusimLaunch(handle), ErrorCode::InvalidConfiguration);
}

TEST_F(RuntimeApiTest, ThreadSynchronizeDrainsDevice) {
    const KernelHandle handle = register_kernel(
        [](ThreadCtx& ctx, Device&, const std::byte*) -> KernelTask {
            ctx.charge(Op::FAdd, 100000);
            co_return;
        });
    ASSERT_EQ(cusimConfigureCall(dim3{4}, dim3{64}), ErrorCode::Success);
    ASSERT_EQ(cusimLaunch(handle), ErrorCode::Success);
    Device& dev = Registry::instance().current_device();
    EXPECT_TRUE(dev.kernel_active());
    ASSERT_EQ(cusimThreadSynchronize(), ErrorCode::Success);
    EXPECT_FALSE(dev.kernel_active());
}

}  // namespace
