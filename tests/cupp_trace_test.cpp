// cupp::trace tests: formatting, the metrics registry, span recording and
// nesting, the §4.6 lazy-copy counters, Chrome-trace JSON export (parsed
// and round-tripped with the in-repo minijson), and the launch-history
// ring buffer.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cupp/cupp.hpp"
#include "cupp/detail/minijson.hpp"

namespace {

namespace tr = cupp::trace;
using cusim::KernelTask;
using cusim::ThreadCtx;

/// Every test starts from a clean, in-memory-recording tracer.
class TraceTest : public ::testing::Test {
protected:
    void SetUp() override {
        tr::clear();
        tr::metrics().reset();
        tr::enable();
    }
    void TearDown() override {
        tr::disable();
        tr::clear();
        tr::metrics().reset();
    }
};

// --- formatting -----------------------------------------------------------

TEST(TraceFormat, NeverTruncates) {
    const std::string big(4096, 'x');
    const std::string s = tr::format("<%s>", big.c_str());
    EXPECT_EQ(s.size(), big.size() + 2);
    EXPECT_EQ(s.front(), '<');
    EXPECT_EQ(s.back(), '>');
}

TEST(TraceFormat, FormatsLikePrintf) {
    EXPECT_EQ(tr::format("%d blocks x %d threads", 48, 128), "48 blocks x 128 threads");
    EXPECT_EQ(tr::format("%.2f", 1.0 / 3.0), "0.33");
}

TEST(TraceFormat, JsonQuoteEscapes) {
    EXPECT_EQ(tr::json_quote("plain"), "\"plain\"");
    EXPECT_EQ(tr::json_quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
    EXPECT_EQ(tr::json_quote("line\nbreak"), "\"line\\nbreak\"");
}

// --- metrics registry -----------------------------------------------------

TEST_F(TraceTest, CountersAccumulate) {
    auto& m = tr::metrics();
    m.add("test.counter", 3);
    m.add("test.counter");
    EXPECT_EQ(m.counter("test.counter"), 4u);
    EXPECT_EQ(m.counter("never.touched"), 0u);

    // A cached handle hits the same slot as the by-name path.
    const tr::counter_handle h("test.counter");
    h.add(6);
    EXPECT_EQ(m.counter("test.counter"), 10u);
}

TEST_F(TraceTest, GaugesHoldTheLatestSample) {
    auto& m = tr::metrics();
    EXPECT_FALSE(m.gauge("rate").has_value());
    m.set_gauge("rate", 10.0);
    m.set_gauge("rate", 42.5);
    ASSERT_TRUE(m.gauge("rate").has_value());
    EXPECT_DOUBLE_EQ(*m.gauge("rate"), 42.5);
}

TEST_F(TraceTest, HistogramPercentiles) {
    auto& m = tr::metrics();
    for (int i = 1; i <= 100; ++i) m.record("lat", static_cast<double>(i));
    const auto h = m.histogram("lat");
    ASSERT_TRUE(h.has_value());
    EXPECT_EQ(h->count, 100u);
    EXPECT_DOUBLE_EQ(h->min, 1.0);
    EXPECT_DOUBLE_EQ(h->max, 100.0);
    EXPECT_DOUBLE_EQ(h->mean, 50.5);
    EXPECT_NEAR(h->p50, 50.5, 1.0);
    EXPECT_NEAR(h->p90, 90.0, 1.5);
    EXPECT_NEAR(h->p99, 99.0, 1.5);
}

TEST_F(TraceTest, FlushedMetricsJsonCarriesHistogramSummaries) {
    auto& m = tr::metrics();
    m.record("flush.lat", 2.0);
    m.record("flush.lat", 6.0);
    m.record("flush.lat", 4.0);

    // The standalone summary and the trace export's "metrics" object must
    // both carry the full min/max/mean histogram summary.
    for (const std::string& doc : {m.summary_json(), tr::export_json()}) {
        const auto root = cupp::minijson::parse(doc);
        const auto* metrics = root.find("histograms") != nullptr
                                  ? &root
                                  : root.find("metrics");
        ASSERT_NE(metrics, nullptr);
        const auto* hists = metrics->find("histograms");
        ASSERT_NE(hists, nullptr);
        const auto* h = hists->find("flush.lat");
        ASSERT_NE(h, nullptr);
        EXPECT_EQ(h->find("count")->number(), 3.0);
        EXPECT_DOUBLE_EQ(h->find("min")->number(), 2.0);
        EXPECT_DOUBLE_EQ(h->find("max")->number(), 6.0);
        EXPECT_DOUBLE_EQ(h->find("mean")->number(), 4.0);
        EXPECT_NE(h->find("p50"), nullptr);
        EXPECT_NE(h->find("p90"), nullptr);
        EXPECT_NE(h->find("p99"), nullptr);
    }
}

TEST_F(TraceTest, ResetZeroesCountersButKeepsSlots) {
    auto& m = tr::metrics();
    const tr::counter_handle h("sticky");
    h.add(5);
    m.set_gauge("g", 1.0);
    m.record("h", 2.0);
    m.reset();
    EXPECT_EQ(m.counter("sticky"), 0u);
    EXPECT_FALSE(m.gauge("g").has_value());
    EXPECT_FALSE(m.histogram("h").has_value());
    // The cached slot must stay valid after reset().
    h.add(2);
    EXPECT_EQ(m.counter("sticky"), 2u);
}

// --- span recording and nesting ------------------------------------------

TEST_F(TraceTest, SpansNest) {
    tr::emit_complete("lane", "outer", 100.0, 50.0);
    tr::emit_complete("lane", "inner", 110.0, 20.0);
    tr::emit_complete("other", "elsewhere", 110.0, 20.0);

    const auto evs = tr::events();
    ASSERT_EQ(evs.size(), 3u);
    EXPECT_TRUE(evs[0].encloses(evs[1]));
    EXPECT_FALSE(evs[1].encloses(evs[0]));
    EXPECT_FALSE(evs[0].encloses(evs[2])) << "different track";
}

TEST_F(TraceTest, DisabledMeansNothingRecorded) {
    tr::disable();
    tr::emit_complete("lane", "dropped", 0.0, 1.0);
    EXPECT_TRUE(tr::events().empty());
    tr::enable();
    tr::emit_instant("lane", "kept", 1.0);
    EXPECT_EQ(tr::events().size(), 1u);
}

// --- §4.6 lazy-copy counters ----------------------------------------------

KernelTask double_all(ThreadCtx& ctx, cupp::deviceT::vector<int>& v) {
    const std::uint64_t gid = ctx.global_id();
    if (gid < v.size()) v.write(ctx, gid, v.read(ctx, gid) * 2);
    co_return;
}
using MutK = KernelTask (*)(ThreadCtx&, cupp::deviceT::vector<int>&);

KernelTask read_only(ThreadCtx& ctx, const cupp::deviceT::vector<int>& v, int& out) {
    if (ctx.global_id() == 0) {
        int sum = 0;
        for (std::uint64_t i = 0; i < v.size(); ++i) sum += v.read(ctx, i);
        out = sum;
    }
    co_return;
}
using RoK = KernelTask (*)(ThreadCtx&, const cupp::deviceT::vector<int>&, int&);

TEST_F(TraceTest, Rule1UploadOnlyWhenDeviceStale) {
    cupp::device d;
    cupp::vector<int> v = {1, 2, 3, 4};
    cupp::kernel k(static_cast<RoK>(read_only), cusim::dim3{1}, cusim::dim3{32});
    int out = 0;

    k(d, v, out);  // first call: device copy stale -> upload
    auto& m = tr::metrics();
    EXPECT_EQ(m.counter("cupp.vector.lazy.upload"), 1u);
    EXPECT_EQ(out, 10);

    k(d, v, out);  // second call: device copy still valid -> avoided
    EXPECT_EQ(m.counter("cupp.vector.lazy.upload"), 1u);
    EXPECT_GE(m.counter("cupp.vector.lazy.upload_avoided"), 1u);
}

TEST_F(TraceTest, Rule2NonConstReferenceInvalidatesHost) {
    cupp::device d;
    cupp::vector<int> v = {1, 2, 3};
    cupp::kernel k(static_cast<MutK>(double_all), cusim::dim3{1}, cusim::dim3{32});
    k(d, v);
    EXPECT_GE(tr::metrics().counter("cupp.vector.lazy.host_invalidated"), 1u);
    EXPECT_FALSE(v.host_data_valid());
}

TEST_F(TraceTest, Rule3HostReadDownloadsOnceThenHits) {
    cupp::device d;
    cupp::vector<int> v = {1, 2, 3};
    cupp::kernel k(static_cast<MutK>(double_all), cusim::dim3{1}, cusim::dim3{32});
    k(d, v);  // host copy now stale

    auto& m = tr::metrics();
    EXPECT_EQ(m.counter("cupp.vector.lazy.download"), 0u);
    EXPECT_EQ(static_cast<int>(v[0]), 2);  // stale read -> download
    EXPECT_EQ(m.counter("cupp.vector.lazy.download"), 1u);
    const auto avoided = m.counter("cupp.vector.lazy.download_avoided");
    EXPECT_EQ(static_cast<int>(v[1]), 4);  // fresh read -> avoided
    EXPECT_EQ(m.counter("cupp.vector.lazy.download"), 1u);
    EXPECT_GT(m.counter("cupp.vector.lazy.download_avoided"), avoided);
}

TEST_F(TraceTest, Rule4HostWriteInvalidatesDevice) {
    cupp::device d;
    cupp::vector<int> v = {1, 2, 3};
    cupp::kernel k(static_cast<RoK>(read_only), cusim::dim3{1}, cusim::dim3{32});
    int out = 0;
    k(d, v, out);  // device copy becomes valid

    auto& m = tr::metrics();
    EXPECT_EQ(m.counter("cupp.vector.lazy.device_invalidated"), 0u);
    v.mutate()[0] = 7;  // host write -> device copy stale
    EXPECT_EQ(m.counter("cupp.vector.lazy.device_invalidated"), 1u);
    EXPECT_FALSE(v.device_data_valid());

    k(d, v, out);  // must re-upload
    EXPECT_EQ(m.counter("cupp.vector.lazy.upload"), 2u);
    EXPECT_EQ(out, 7 + 2 + 3);
}

// --- JSON export ----------------------------------------------------------

TEST_F(TraceTest, ExportParsesAndRoundTrips) {
    cupp::device d;
    cupp::vector<int> v = {1, 2, 3, 4};
    cupp::kernel k(static_cast<MutK>(double_all), cusim::dim3{2}, cusim::dim3{32});
    k.set_name("doubler");
    k(d, v);
    (void)v.snapshot();

    const std::string doc = tr::export_json();
    const auto root = cupp::minijson::parse(doc);
    ASSERT_TRUE(root.is_object());

    const auto* events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());
    EXPECT_FALSE(events->array().empty());

    bool saw_kernel_span = false, saw_thread_name = false, saw_counter = false;
    for (const auto& ev : events->array()) {
        ASSERT_TRUE(ev.is_object());
        const auto* ph = ev.find("ph");
        const auto* name = ev.find("name");
        ASSERT_NE(ph, nullptr);
        ASSERT_NE(name, nullptr);
        if (ph->str() == "X" && name->str() == "cupp::call doubler") saw_kernel_span = true;
        if (ph->str() == "M" && name->str() == "thread_name") saw_thread_name = true;
        if (ph->str() == "C") saw_counter = true;
    }
    EXPECT_TRUE(saw_kernel_span);
    EXPECT_TRUE(saw_thread_name);
    EXPECT_TRUE(saw_counter);

    const auto* metrics = root.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_TRUE(metrics->is_object());

    // Round trip: canonical serialisation is a fixed point.
    const std::string once = cupp::minijson::serialize(root);
    const std::string twice = cupp::minijson::serialize(cupp::minijson::parse(once));
    EXPECT_EQ(once, twice);
}

// --- retry backoffs on the timeline ----------------------------------------

TEST_F(TraceTest, RetryBackoffsAreSpansOnTheHostLane) {
    // One injected transient launch failure: the retry layer must leave a
    // visible backoff span on the device's host lane, the fault an instant
    // on the "faults" track, and the cupp.retry.* counters must add up.
    cusim::faults::Rule r;
    r.site = cusim::faults::Site::Launch;
    r.code = cusim::ErrorCode::LaunchFailure;
    r.nth = 1;
    cusim::faults::configure({r});

    cupp::device d;
    cupp::vector<int> v = {1, 2, 3};
    cupp::kernel k(static_cast<MutK>(double_all), cusim::dim3{1}, cusim::dim3{32});
    k.set_name("retried");
    k(d, v);
    EXPECT_EQ(v.snapshot(), (std::vector<int>{2, 4, 6}));

    auto& m = tr::metrics();
    EXPECT_EQ(m.counter("cupp.retry.attempts"), 1u);
    EXPECT_EQ(m.counter("cupp.retry.recovered"), 1u);
    EXPECT_EQ(m.counter("cupp.retry.exhausted"), 0u);
    EXPECT_EQ(m.counter("cusim.faults.injections"), 1u);

    bool saw_backoff = false, saw_fault = false;
    for (const auto& ev : tr::events()) {
        if (ev.phase == tr::Phase::Complete && ev.track == d.sim().host_track() &&
            ev.name.find("cupp::retry launch retried") != std::string::npos) {
            saw_backoff = true;
            EXPECT_GT(ev.dur_us, 0.0);
        }
        if (ev.phase == tr::Phase::Instant && ev.track == "faults" &&
            ev.name == "fault.launch") {
            saw_fault = true;
        }
    }
    EXPECT_TRUE(saw_backoff) << "no cupp::retry span on the host lane";
    EXPECT_TRUE(saw_fault) << "no fault instant on the faults track";

    cusim::faults::reset();
}

// --- launch-history ring buffer -------------------------------------------

TEST_F(TraceTest, RecentLaunchesKeepNamesAndOrder) {
    cupp::device d;
    cupp::vector<int> v = {1, 2, 3};
    cupp::kernel k(static_cast<MutK>(double_all), cusim::dim3{1}, cusim::dim3{32});
    k.set_name("first");
    k(d, v);
    k.set_name("second");
    k(d, v);

    const auto history = d.sim().recent_launches();
    ASSERT_EQ(history.size(), 2u);
    EXPECT_EQ(history[0].kernel_name, "first");
    EXPECT_EQ(history[1].kernel_name, "second");
    EXPECT_GT(history[0].stats.threads, 0u);
    EXPECT_EQ(history[0].stats.threads_per_block, 32u);
    EXPECT_LE(history[0].start_seconds, history[0].end_seconds);
    // Launches are issued back to back on one device: history is ordered.
    EXPECT_LE(history[0].start_seconds, history[1].start_seconds);
}

TEST_F(TraceTest, LaunchHistoryIsBounded) {
    cupp::device d;
    cupp::vector<int> v = {1};
    cupp::kernel k(static_cast<MutK>(double_all), cusim::dim3{1}, cusim::dim3{32});
    for (int i = 0; i < 70; ++i) {
        k.set_name(tr::format("k%d", i));
        k(d, v);
    }
    const auto history = d.sim().recent_launches();
    ASSERT_EQ(history.size(), cusim::Device::kLaunchHistoryCapacity);
    // Oldest entries were evicted: the window ends at the newest launch.
    EXPECT_EQ(history.back().kernel_name, "k69");
    EXPECT_EQ(history.front().kernel_name,
              tr::format("k%d", 70 - static_cast<int>(cusim::Device::kLaunchHistoryCapacity)));
}

}  // namespace
