// cupp::constant_array tests: kernel passing through the host/device type
// transformation (device type cusim::ConstantPtr<T>), host-side updates,
// copy semantics (copies alias one immutable constant range), capacity
// limits, and passing constants to a stream-bound kernel call.
#include <gtest/gtest.h>

#include <array>
#include <span>
#include <vector>

#include "cupp/cupp.hpp"

namespace {

using cusim::KernelTask;
using cusim::ThreadCtx;

KernelTask weighted_kernel(ThreadCtx& ctx, cusim::ConstantPtr<float> weights,
                           cupp::deviceT::vector<float>& out) {
    const std::uint64_t gid = ctx.global_id();
    if (gid < out.size()) {
        out.write(ctx, gid, weights.read(ctx, gid % weights.size()) * 100.0f);
    }
    co_return;
}
using WeightedK = KernelTask (*)(ThreadCtx&, cusim::ConstantPtr<float>,
                                 cupp::deviceT::vector<float>&);

TEST(ConstantArray, HostAccessAndBounds) {
    cupp::device d;
    cupp::constant_array<float> c(d, {1.5f, 2.5f, 3.5f});
    EXPECT_EQ(c.size(), 3u);
    EXPECT_FLOAT_EQ(c[0], 1.5f);
    EXPECT_FLOAT_EQ(c[2], 3.5f);
    EXPECT_THROW((void)c[3], std::out_of_range);
}

TEST(ConstantArray, KernelReadsTransformedPointer) {
    cupp::device d;
    cupp::constant_array<float> c(d, {1.0f, 2.0f});
    cupp::vector<float> out(4, 0.0f);
    cupp::kernel k(static_cast<WeightedK>(weighted_kernel), cusim::dim3{1},
                   cusim::dim3{32});
    k(d, c, out);
    EXPECT_FLOAT_EQ(out[0], 100.0f);
    EXPECT_FLOAT_EQ(out[1], 200.0f);
    EXPECT_FLOAT_EQ(out[2], 100.0f);
    EXPECT_FLOAT_EQ(out[3], 200.0f);
}

TEST(ConstantArray, SetReuploadsBeforeTheNextLaunch) {
    cupp::device d;
    cupp::constant_array<float> c(d, {1.0f});
    cupp::vector<float> out(1, 0.0f);
    cupp::kernel k(static_cast<WeightedK>(weighted_kernel), cusim::dim3{1},
                   cusim::dim3{32});
    k(d, c, out);
    EXPECT_FLOAT_EQ(out[0], 100.0f);
    c.set(0, 7.0f);
    EXPECT_FLOAT_EQ(c[0], 7.0f);
    k(d, c, out);
    EXPECT_FLOAT_EQ(out[0], 700.0f);
}

TEST(ConstantArray, CopiesAliasOneConstantRange) {
    cupp::device d;
    cupp::constant_array<float> a(d, {4.0f, 5.0f});
    cupp::constant_array<float> b = a;  // same range, handle is copyable
    EXPECT_EQ(a.transform(d).addr(), b.transform(d).addr());

    cupp::vector<float> out(2, 0.0f);
    cupp::kernel k(static_cast<WeightedK>(weighted_kernel), cusim::dim3{1},
                   cusim::dim3{32});
    // An update through either handle is a device-side update of the shared
    // range; the *other* handle's stale host copy re-uploads on its next
    // set(), so only per-handle host reads diverge.
    b.set(0, 9.0f);
    k(d, b, out);
    EXPECT_FLOAT_EQ(out[0], 900.0f);
    EXPECT_FLOAT_EQ(out[1], 500.0f);
}

TEST(ConstantArray, SpanConstructionFromLargerData) {
    cupp::device d;
    std::array<float, 64> values{};
    for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] = static_cast<float>(i) * 0.5f;
    }
    cupp::constant_array<float> c(d, std::span<const float>(values));
    EXPECT_EQ(c.size(), 64u);
    EXPECT_FLOAT_EQ(c[63], 31.5f);
}

TEST(ConstantArray, StreamBoundKernelReceivesConstants) {
    cupp::device d;
    cupp::stream s(d);
    cupp::constant_array<float> c(d, {3.0f});
    cupp::vector<float> out(8, 0.0f);
    cupp::kernel k(static_cast<WeightedK>(weighted_kernel), cusim::dim3{1},
                   cusim::dim3{32});
    // ConstantPtr travels by value: no device_reference teardown serializes
    // the call, so the launch stays queued until the synchronize.
    k(d, s, c, out);
    EXPECT_GT(d.sim().pending_async_ops(), 0u);
    s.synchronize();
    EXPECT_FLOAT_EQ(out[0], 300.0f);
    EXPECT_FLOAT_EQ(out[7], 300.0f);
}

}  // namespace
