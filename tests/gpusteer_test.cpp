// GPU Boids plugin tests: every development version must compute the exact
// same flock as the CPU reference (the kernels share the steering math), and
// the structural properties of chapter 6 — lazy transfers in version 5,
// divergence counters, double buffering — must hold.
#include <gtest/gtest.h>

#include "cusim/block_pool.hpp"
#include "cusim/engine.hpp"
#include "cusim/faults.hpp"
#include "gpusteer/plugin.hpp"
#include "steer/steer.hpp"

namespace {

using gpusteer::GpuBoidsPlugin;
using gpusteer::Version;
using steer::Agent;
using steer::WorldSpec;

WorldSpec small_world(std::uint32_t agents = 256, std::uint32_t think = 1) {
    WorldSpec spec;
    spec.agents = agents;  // multiple of 128 for the shared-memory kernels
    spec.think_period = think;
    return spec;
}

void expect_same_flock(const std::vector<Agent>& a, const std::vector<Agent>& b,
                       const char* what) {
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].position, b[i].position) << what << " agent " << i;
        EXPECT_EQ(a[i].forward, b[i].forward) << what << " agent " << i;
        EXPECT_FLOAT_EQ(a[i].speed, b[i].speed) << what << " agent " << i;
    }
}

class VersionEquivalence : public ::testing::TestWithParam<Version> {};

TEST_P(VersionEquivalence, MatchesCpuReferenceBitForBit) {
    const WorldSpec spec = small_world();
    steer::CpuBoidsPlugin cpu;
    cpu.open(spec);
    GpuBoidsPlugin gpu(GetParam());
    gpu.open(spec);

    for (int step = 0; step < 5; ++step) {
        cpu.step();
        gpu.step();
    }
    expect_same_flock(cpu.snapshot(), gpu.snapshot(), "after 5 steps");
}

TEST_P(VersionEquivalence, MatchesCpuWithThinkFrequency) {
    const WorldSpec spec = small_world(256, 4);
    steer::CpuBoidsPlugin cpu;
    cpu.open(spec);
    GpuBoidsPlugin gpu(GetParam());
    gpu.open(spec);
    for (int step = 0; step < 9; ++step) {
        cpu.step();
        gpu.step();
    }
    expect_same_flock(cpu.snapshot(), gpu.snapshot(), "think frequency");
}

INSTANTIATE_TEST_SUITE_P(AllVersions, VersionEquivalence,
                         ::testing::Values(Version::V1_NeighborSearchGlobal,
                                           Version::V2_NeighborSearchShared,
                                           Version::V3_SimSubstageCached,
                                           Version::V4_SimSubstageRecompute,
                                           Version::V5_FullUpdateOnDevice),
                         [](const auto& info) {
                             return "v" + std::to_string(static_cast<int>(info.param));
                         });

TEST(GpuPlugin, Version6MatchesCpuGridReferenceBitForBit) {
    // The future-work §7 pipeline: host-built grid + full device update.
    // Its oracle is the CPU plugin running with the same spatial grid —
    // both walk candidates in identical cell order.
    WorldSpec spec = small_world(250);  // v6 needs no block-size multiple
    steer::CpuBoidsPlugin cpu;
    cpu.open(spec.with_grid());
    GpuBoidsPlugin gpu(Version::V6_GridNeighborSearch);
    gpu.open(spec);
    for (int step = 0; step < 5; ++step) {
        cpu.step();
        gpu.step();
    }
    expect_same_flock(cpu.snapshot(), gpu.snapshot(), "v6 vs cpu-grid");
}

TEST(GpuPlugin, Version6MatchesCpuGridWithThinkFrequency) {
    WorldSpec spec = small_world(256, 3);
    steer::CpuBoidsPlugin cpu;
    cpu.open(spec.with_grid());
    GpuBoidsPlugin gpu(Version::V6_GridNeighborSearch);
    gpu.open(spec);
    for (int step = 0; step < 7; ++step) {
        cpu.step();
        gpu.step();
    }
    expect_same_flock(cpu.snapshot(), gpu.snapshot(), "v6 think frequency");
}

TEST(GpuPlugin, GridAndBruteForceFlocksConvergeOnTheSameNeighbors) {
    // Different candidate order => different float sums => slightly
    // different flocks; but the neighbor *sets* match, so positions stay
    // close over a short run.
    const WorldSpec spec = small_world(256);
    GpuBoidsPlugin v5(Version::V5_FullUpdateOnDevice);
    GpuBoidsPlugin v6(Version::V6_GridNeighborSearch);
    v5.open(spec);
    v6.open(spec);
    for (int step = 0; step < 3; ++step) {
        v5.step();
        v6.step();
    }
    const auto a = v5.snapshot();
    const auto b = v6.snapshot();
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_LT((a[i].position - b[i].position).length(), 0.05f) << i;
    }
}

TEST(GpuPlugin, DoubleBufferingComputesTheSameFlock) {
    const WorldSpec spec = small_world();
    GpuBoidsPlugin plain(Version::V5_FullUpdateOnDevice, /*double_buffering=*/false);
    GpuBoidsPlugin db(Version::V5_FullUpdateOnDevice, /*double_buffering=*/true);
    plain.open(spec);
    db.open(spec);
    for (int step = 0; step < 6; ++step) {
        plain.step();
        db.step();
    }
    expect_same_flock(plain.snapshot(), db.snapshot(), "double buffering");
}

TEST(GpuPlugin, DoubleBufferingDrawsThePreviousStep) {
    const WorldSpec spec = small_world();
    GpuBoidsPlugin plain(Version::V5_FullUpdateOnDevice, false);
    GpuBoidsPlugin db(Version::V5_FullUpdateOnDevice, true);
    plain.open(spec);
    db.open(spec);
    plain.step();
    db.step();
    plain.step();
    db.step();
    // At step k the double-buffered demo draws step k-1's matrices.
    GpuBoidsPlugin ref(Version::V5_FullUpdateOnDevice, false);
    ref.open(spec);
    ref.step();
    ASSERT_EQ(db.draw_matrices().size(), ref.draw_matrices().size());
    for (std::size_t i = 0; i < ref.draw_matrices().size(); ++i) {
        EXPECT_EQ(db.draw_matrices()[i], ref.draw_matrices()[i]) << i;
    }
}

TEST(GpuPlugin, Version5KeepsAgentStateOnDevice) {
    // §6.2.3: "only the required information to draw the agents is moved
    // from the device to the host memory. All other data stays on the
    // device."
    const WorldSpec spec = small_world();
    GpuBoidsPlugin gpu(Version::V5_FullUpdateOnDevice);
    gpu.open(spec);
    auto& sim = cusim::Registry::instance().device(0);

    gpu.step();  // first step uploads the initial state
    const auto to_device_after_first = sim.bytes_to_device();
    const auto to_host_after_first = sim.bytes_to_host();
    for (int i = 0; i < 4; ++i) gpu.step();

    // No further uploads of agent state: only the tiny per-call argument
    // handles (8 vector references of ~32 bytes each).
    const auto upload_per_step =
        (sim.bytes_to_device() - to_device_after_first) / 4;
    EXPECT_LE(upload_per_step, 512u);
    EXPECT_LT(upload_per_step, spec.agents * sizeof(steer::Vec3));

    // Downloads are exactly the draw matrices (+ nothing else).
    const auto download_per_step = (sim.bytes_to_host() - to_host_after_first) / 4;
    EXPECT_LE(download_per_step, spec.agents * sizeof(steer::Mat4) + 256u);
    EXPECT_GE(download_per_step, spec.agents * sizeof(steer::Mat4));
}

TEST(GpuPlugin, Version1UploadsPositionsEveryStep) {
    const WorldSpec spec = small_world();
    GpuBoidsPlugin gpu(Version::V1_NeighborSearchGlobal);
    gpu.open(spec);
    auto& sim = cusim::Registry::instance().device(0);
    gpu.step();
    const auto base = sim.bytes_to_device();
    gpu.step();
    // Positions (n * 12 bytes) must travel every step: the host modified them.
    EXPECT_GE(sim.bytes_to_device() - base, spec.agents * sizeof(steer::Vec3));
}

TEST(GpuPlugin, DivergenceCountersActive) {
    // §6.3.1: the neighbor-search branches diverge; the counters must see it.
    const WorldSpec spec = small_world(512);
    GpuBoidsPlugin gpu(Version::V5_FullUpdateOnDevice);
    gpu.open(spec);
    for (int i = 0; i < 2; ++i) gpu.step();
    EXPECT_GT(gpu.branch_evaluations(), 0u);
    EXPECT_GT(gpu.divergent_warp_steps(), 0u);
    // ... but far fewer divergent steps than branch evaluations.
    EXPECT_LT(gpu.divergent_warp_steps(), gpu.branch_evaluations() / 4);
}

TEST(GpuPlugin, SharedKernelRequiresMultipleOfBlockSize) {
    GpuBoidsPlugin gpu(Version::V2_NeighborSearchShared);
    WorldSpec spec = small_world(100);  // not a multiple of 128
    EXPECT_THROW(gpu.open(spec), cupp::usage_error);
    // Version 1 has no such restriction.
    GpuBoidsPlugin v1(Version::V1_NeighborSearchGlobal);
    EXPECT_NO_THROW(v1.open(spec));
    v1.step();
}

TEST(GpuPlugin, SimulatedTimeAdvancesMonotonically) {
    const WorldSpec spec = small_world();
    GpuBoidsPlugin gpu(Version::V5_FullUpdateOnDevice);
    gpu.open(spec);
    double last = gpu.device_handle().sim().host_time();
    for (int i = 0; i < 3; ++i) {
        const auto t = gpu.step();
        EXPECT_GT(t.total(), 0.0);
        const double now = gpu.device_handle().sim().host_time();
        EXPECT_GT(now, last);
        last = now;
    }
}

// --- device-lost recovery (cusim::faults + the CPU fallback path) ----------

/// Runs `plugin` for 5 steps, losing the device on the first kernel launch
/// of step 2. The plugin must absorb the loss (reset + CPU fallback +
/// resume) without it being observable in the final flock.
void run_with_device_loss(GpuBoidsPlugin& plugin, const WorldSpec& spec) {
    plugin.open(spec);
    for (int step = 0; step < 5; ++step) {
        if (step == 2) {
            cusim::faults::Rule r;
            r.site = cusim::faults::Site::Launch;
            r.code = cusim::ErrorCode::DeviceLost;
            r.nth = 1;
            r.max_injections = 1;
            cusim::faults::configure({r});
        }
        plugin.step();
    }
    cusim::faults::reset();
}

class DeviceLostRecovery : public ::testing::TestWithParam<Version> {
protected:
    void TearDown() override { cusim::faults::reset(); }
};

TEST_P(DeviceLostRecovery, CpuFallbackKeepsTheFlockBitIdentical) {
    const WorldSpec spec = small_world();
    // Version 6's oracle is the grid-enabled CPU plugin (identical candidate
    // order); every other version bit-matches the brute-force reference.
    const bool v6 = GetParam() == Version::V6_GridNeighborSearch;
    steer::CpuBoidsPlugin cpu;
    cpu.open(v6 ? spec.with_grid() : spec);
    for (int step = 0; step < 5; ++step) cpu.step();

    GpuBoidsPlugin gpu(GetParam());
    run_with_device_loss(gpu, spec);

    EXPECT_EQ(gpu.device_resets(), 1u);
    EXPECT_EQ(gpu.cpu_fallback_steps(), 1u);
    EXPECT_FALSE(gpu.device_handle().lost()) << "the plugin must reset the device";
    expect_same_flock(cpu.snapshot(), gpu.snapshot(), "device-lost recovery");

    // The recovered run's statistics must equal a fault-free run's: the
    // CPU fallback mirrors exactly the counters the lost step would have
    // added.
    GpuBoidsPlugin clean(GetParam());
    clean.open(spec);
    for (int step = 0; step < 5; ++step) clean.step();
    EXPECT_EQ(gpu.counters().thinks, clean.counters().thinks);
    EXPECT_EQ(gpu.counters().pairs_examined, clean.counters().pairs_examined);
    EXPECT_EQ(gpu.counters().modifies, clean.counters().modifies);
    EXPECT_EQ(gpu.counters().neighbors_found, clean.counters().neighbors_found);
}

INSTANTIATE_TEST_SUITE_P(AllVersions, DeviceLostRecovery,
                         ::testing::Values(Version::V1_NeighborSearchGlobal,
                                           Version::V2_NeighborSearchShared,
                                           Version::V3_SimSubstageCached,
                                           Version::V4_SimSubstageRecompute,
                                           Version::V5_FullUpdateOnDevice,
                                           Version::V6_GridNeighborSearch),
                         [](const auto& info) {
                             return "v" + std::to_string(static_cast<int>(info.param));
                         });

TEST(DeviceLostRecoveryExtra, DoubleBufferedV5RecoversTheSameFlock) {
    const WorldSpec spec = small_world();
    // Snapshot the plain run before the double-buffered one: device reset is
    // device-global, so the second plugin's recovery wipes the first's
    // device-side state (version 5 snapshots download from the device).
    GpuBoidsPlugin plain(Version::V5_FullUpdateOnDevice, /*double_buffering=*/false);
    run_with_device_loss(plain, spec);
    const std::vector<Agent> plain_flock = plain.snapshot();

    GpuBoidsPlugin db(Version::V5_FullUpdateOnDevice, /*double_buffering=*/true);
    run_with_device_loss(db, spec);

    EXPECT_EQ(db.device_resets(), 1u);
    EXPECT_EQ(db.cpu_fallback_steps(), 1u);
    // Double buffering changes which frame is *drawn*, never the flock.
    expect_same_flock(plain_flock, db.snapshot(), "db recovery flock");
    ASSERT_EQ(db.draw_matrices().size(), spec.agents);
}

TEST(DeviceLostRecoveryExtra, SurvivesLossesInConsecutiveSteps) {
    const WorldSpec spec = small_world();
    steer::CpuBoidsPlugin cpu;
    cpu.open(spec.with_grid());  // version 6's bit-exact oracle
    for (int step = 0; step < 6; ++step) cpu.step();

    GpuBoidsPlugin gpu(Version::V6_GridNeighborSearch);
    gpu.open(spec);
    for (int step = 0; step < 6; ++step) {
        if (step == 1 || step == 2) {
            cusim::faults::Rule r;
            r.site = cusim::faults::Site::Launch;
            r.code = cusim::ErrorCode::DeviceLost;
            r.nth = 1;
            r.max_injections = 1;
            cusim::faults::configure({r});
        }
        gpu.step();
    }
    cusim::faults::reset();

    EXPECT_EQ(gpu.device_resets(), 2u);
    EXPECT_EQ(gpu.cpu_fallback_steps(), 2u);
    expect_same_flock(cpu.snapshot(), gpu.snapshot(), "two losses");
}

// Parallel block-engine determinism (PR 4): the whole Boids pipeline — six
// kernel versions' worth of launches per step — must produce a bit-identical
// flock whether the simulator runs blocks on one host thread or many.
TEST(GpuPlugin, ParallelEngineKeepsTheFlockBitIdentical) {
    const WorldSpec spec = small_world();
    auto run_flock = [&](unsigned threads) {
        cusim::BlockPool::set_threads(threads);
        GpuBoidsPlugin gpu(Version::V5_FullUpdateOnDevice);
        gpu.open(spec);
        for (int step = 0; step < 5; ++step) gpu.step();
        auto flock = gpu.snapshot();
        cusim::BlockPool::set_threads(0);
        return flock;
    };
    const auto serial = run_flock(1);
    expect_same_flock(run_flock(2), serial, "2 engine threads");
    expect_same_flock(run_flock(8), serial, "8 engine threads");
}

// The engine selection must be flock-invariant too: gpusteer's kernels are
// per-thread (no warp form), so under CUPP_SIM_ENGINE=warp they run the
// identical classic interpreter — pinning that down here keeps the
// dual-form dispatch honest about its fallback path.
TEST(GpuPlugin, WarpEngineModeKeepsTheFlockBitIdentical) {
    const WorldSpec spec = small_world();
    auto run_flock = [&](cusim::EngineMode mode, unsigned threads) {
        cusim::set_engine_mode(mode);
        cusim::BlockPool::set_threads(threads);
        GpuBoidsPlugin gpu(Version::V5_FullUpdateOnDevice);
        gpu.open(spec);
        for (int step = 0; step < 5; ++step) gpu.step();
        auto flock = gpu.snapshot();
        cusim::BlockPool::set_threads(0);
        cusim::clear_engine_mode();
        return flock;
    };
    const auto serial = run_flock(cusim::EngineMode::Thread, 1);
    expect_same_flock(run_flock(cusim::EngineMode::Warp, 1), serial, "warp serial");
    expect_same_flock(run_flock(cusim::EngineMode::Warp, 8), serial,
                      "warp + 8 engine threads");
}

TEST(GpuPlugin, VersionTraitsMatchTable6_1) {
    using gpusteer::VersionTraits;
    constexpr auto v1 = VersionTraits::of(Version::V1_NeighborSearchGlobal);
    constexpr auto v2 = VersionTraits::of(Version::V2_NeighborSearchShared);
    constexpr auto v3 = VersionTraits::of(Version::V3_SimSubstageCached);
    constexpr auto v4 = VersionTraits::of(Version::V4_SimSubstageRecompute);
    constexpr auto v5 = VersionTraits::of(Version::V5_FullUpdateOnDevice);
    EXPECT_TRUE(v1.ns_on_device && !v1.steering_on_device && !v1.modification_on_device);
    EXPECT_TRUE(v2.ns_on_device && !v2.steering_on_device && !v2.modification_on_device);
    EXPECT_TRUE(v3.ns_on_device && v3.steering_on_device && !v3.modification_on_device);
    EXPECT_TRUE(v4.ns_on_device && v4.steering_on_device && !v4.modification_on_device);
    EXPECT_TRUE(v5.ns_on_device && v5.steering_on_device && v5.modification_on_device);
}

}  // namespace
