// cupp::future tests: async kernel launches and prefetches returning
// futures, .then() continuation chains riding stream FIFO order, value
// chaining, when_all joins across streams via device-side event edges,
// and the error model — transient failures propagate (skipping downstream
// continuations), sticky DeviceLost surfaces as device_lost_error, and
// get()/wait() honour the calling thread's retry policy.
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "cupp/cupp.hpp"
#include "cusim/faults.hpp"

namespace {

using cusim::KernelTask;
using cusim::ThreadCtx;

KernelTask double_elements(ThreadCtx& ctx, cupp::deviceT::vector<int>& v) {
    const std::uint64_t gid = ctx.global_id();
    if (gid < v.size()) {
        v.write(ctx, gid, v.read(ctx, gid) * 2);
    }
    co_return;
}
using DoubleK = KernelTask (*)(ThreadCtx&, cupp::deviceT::vector<int>&);

KernelTask add_one(ThreadCtx& ctx, cupp::deviceT::vector<int>& v) {
    const std::uint64_t gid = ctx.global_id();
    if (gid < v.size()) {
        v.write(ctx, gid, v.read(ctx, gid) + 1);
    }
    co_return;
}
using AddK = KernelTask (*)(ThreadCtx&, cupp::deviceT::vector<int>&);

/// A zero-backoff policy with a fixed attempt budget (tests stay fast).
cupp::retry_policy attempts(std::uint32_t n) {
    cupp::retry_policy p;
    p.max_attempts = n;
    p.initial_backoff_s = 0.0;
    p.jitter = 0.0;
    return p;
}

TEST(Future, AsyncKernelOwnsItsStream) {
    cupp::device d;
    cupp::vector<int> v = {1, 2, 3, 4};
    cupp::kernel k(static_cast<DoubleK>(double_elements), cusim::dim3{1},
                   cusim::dim3{32});
    k.set_name("double");

    cupp::future<void> f = k.async(d, v);
    EXPECT_TRUE(f.valid());
    EXPECT_FALSE(f.has_error());
    f.get();  // blocks on the completion event; rethrows nothing
    EXPECT_TRUE(f.is_ready());
    EXPECT_EQ(static_cast<int>(v[0]), 2);
    EXPECT_EQ(static_cast<int>(v[3]), 8);
}

TEST(Future, AsyncOnCallerStreamIsDeferred) {
    cupp::device d;
    cupp::stream s(d);
    cupp::vector<int> v(64, 3);
    cupp::kernel k(static_cast<DoubleK>(double_elements), cusim::dim3{2},
                   cusim::dim3{32});

    const std::uint64_t launches_before = d.sim().launches();
    cupp::future<void> f = k.async(d, s, v);
    EXPECT_EQ(&f.bound_stream(), &s);
    EXPECT_EQ(d.sim().launches(), launches_before);  // enqueued, not run
    f.wait();
    EXPECT_EQ(d.sim().launches(), launches_before + 1);
    EXPECT_EQ(static_cast<int>(v[0]), 6);
}

TEST(Future, ThenEnqueuesOntoTheSameStreamWithoutSync) {
    cupp::device d;
    cupp::vector<int> v(32, 1);
    cupp::kernel dbl(static_cast<DoubleK>(double_elements), cusim::dim3{1},
                     cusim::dim3{32});
    cupp::kernel inc(static_cast<AddK>(add_one), cusim::dim3{1}, cusim::dim3{32});

    const std::uint64_t launches_before = d.sim().launches();
    auto done = dbl.async(d, v)
                    .then([&](const cupp::device& dev, const cupp::stream& s) {
                        inc(dev, s, v);  // FIFO: runs after the double
                    })
                    .then([&](const cupp::device& dev, const cupp::stream& s) {
                        dbl(dev, s, v);
                    });
    // The whole chain enqueued with zero host synchronization.
    EXPECT_EQ(d.sim().launches(), launches_before);
    done.get();
    EXPECT_EQ(d.sim().launches(), launches_before + 3);
    EXPECT_EQ(static_cast<int>(v[0]), 6);  // (1*2 + 1) * 2
}

TEST(Future, ThenChainsValuesOnTheHost) {
    cupp::device d;
    cupp::vector<int> v(16, 5);
    cupp::kernel dbl(static_cast<DoubleK>(double_elements), cusim::dim3{1},
                     cusim::dim3{32});

    cupp::future<int> f = dbl.async(d, v).then([] { return 40; }).then(
        [](int x) { return x + 2; });
    EXPECT_EQ(f.get(), 42);
    EXPECT_EQ(static_cast<int>(v[0]), 10);
}

TEST(Future, WhenAllJoinsStreamsWithDeviceSideEdges) {
    cupp::device d;
    cupp::stream sa(d), sb(d);
    cupp::vector<int> a(64, 1), b(64, 2);
    cupp::kernel dbl(static_cast<DoubleK>(double_elements), cusim::dim3{2},
                     cusim::dim3{32});

    cupp::future<void> fa = dbl.async(d, sa, a);
    cupp::future<void> fb = dbl.async(d, sb, b);
    cupp::future<void> all = when_all(fa, fb);
    EXPECT_FALSE(all.has_error());
    all.get();
    EXPECT_TRUE(fa.is_ready());
    EXPECT_TRUE(fb.is_ready());
    EXPECT_EQ(static_cast<int>(a[0]), 2);
    EXPECT_EQ(static_cast<int>(b[0]), 4);
}

TEST(Future, WhenAllMixesKernelAndPrefetchFutures) {
    cupp::device d;
    cupp::stream sa(d), sb(d);
    cupp::vector<int> a(128, 7), b(128, 1);
    cupp::kernel dbl(static_cast<DoubleK>(double_elements), cusim::dim3{4},
                     cusim::dim3{32});

    cupp::future<void> up = a.prefetch_to_device_async(d, sa);
    EXPECT_TRUE(up.valid());
    EXPECT_EQ(a.uploads(), 1u);
    cupp::future<void> fk = dbl.async(d, sb, b);
    auto tail = when_all(up, fk).then([&](const cupp::device& dev,
                                          const cupp::stream& s) {
        dbl(dev, s, a);  // ordered behind both antecedents
    });
    tail.get();
    EXPECT_EQ(a.uploads(), 1u);  // the kernel found the prefetched copy
    EXPECT_EQ(static_cast<int>(a[0]), 14);
    EXPECT_EQ(static_cast<int>(b[0]), 2);

    // Already-valid device copy: the async prefetch degenerates to an
    // empty, already-ready future.
    cupp::future<void> noop = a.prefetch_to_device_async(d, sa);
    EXPECT_FALSE(noop.valid());
    EXPECT_TRUE(noop.is_ready());
    noop.get();  // no-op by design
}

TEST(Future, PrefetchToHostFutureCoversTheDownload) {
    cupp::device d;
    cupp::stream s(d);
    cupp::vector<int> v(64, 5);
    cupp::kernel dbl(static_cast<DoubleK>(double_elements), cusim::dim3{2},
                     cusim::dim3{32});
    dbl(d, s, v);  // host copy now stale
    EXPECT_FALSE(v.host_data_valid());

    cupp::future<void> f = v.prefetch_to_host_async(s);
    EXPECT_TRUE(f.valid());
    f.get();
    // Consuming the future synchronized the stream; the first host touch
    // settles the pending flag without re-downloading.
    EXPECT_EQ(static_cast<int>(v[0]), 10);
    EXPECT_EQ(v.downloads(), 1u);
}

TEST(Future, TransientLaunchFailureSkipsContinuations) {
    cupp::device d;
    cupp::vector<int> v(32, 1);
    cupp::kernel dbl(static_cast<DoubleK>(double_elements), cusim::dim3{1},
                     cusim::dim3{32});
    dbl.set_name("flaky");

    cusim::faults::Rule rule;
    rule.site = cusim::faults::Site::Launch;
    rule.code = cusim::ErrorCode::LaunchFailure;
    rule.nth = 1;
    rule.filter = "flaky";
    cusim::faults::configure({rule}, /*seed=*/7);

    bool ran = false;
    cupp::future<void> f;
    {
        // One attempt, no retries: the injected failure must stick.
        cupp::scoped_retry_policy only_once(attempts(1));
        f = dbl.async(d, v).then([&] { ran = true; });
    }
    cusim::faults::reset();

    EXPECT_TRUE(f.has_error());
    EXPECT_TRUE(f.is_ready());  // errors count as ready
    EXPECT_FALSE(ran);          // the continuation never ran
    try {
        f.get();
        FAIL() << "expected kernel_error";
    } catch (const cupp::kernel_error& e) {
        EXPECT_TRUE(e.transient());
        EXPECT_EQ(e.code(), cusim::ErrorCode::LaunchFailure);
    }
    // The data is untouched and the device fully usable.
    EXPECT_EQ(static_cast<int>(v[0]), 1);
    dbl.async(d, v).get();
    EXPECT_EQ(static_cast<int>(v[0]), 2);
}

TEST(Future, RetryPolicyAbsorbsTransientLaunchFailure) {
    cupp::device d;
    cupp::vector<int> v(32, 1);
    cupp::kernel dbl(static_cast<DoubleK>(double_elements), cusim::dim3{1},
                     cusim::dim3{32});
    dbl.set_name("retried");

    cusim::faults::Rule rule;
    rule.site = cusim::faults::Site::Launch;
    rule.code = cusim::ErrorCode::LaunchFailure;
    rule.nth = 1;
    rule.filter = "retried";
    cusim::faults::configure({rule}, /*seed=*/7);

    cupp::future<void> f;
    {
        cupp::scoped_retry_policy retrying(attempts(4));
        f = dbl.async(d, v);  // first attempt faults, the retry lands
    }
    cusim::faults::reset();
    EXPECT_FALSE(f.has_error());
    f.get();
    EXPECT_EQ(static_cast<int>(v[0]), 2);
}

TEST(Future, StickyDeviceLostPropagatesAndResetRecovers) {
    cupp::device d;
    cupp::vector<int> v(32, 3);
    cupp::kernel dbl(static_cast<DoubleK>(double_elements), cusim::dim3{1},
                     cusim::dim3{32});

    d.sim().poison();
    cupp::future<void> f = dbl.async(d, v);
    EXPECT_TRUE(f.has_error());
    try {
        f.get();
        FAIL() << "expected device_lost_error";
    } catch (const cupp::device_lost_error& e) {
        EXPECT_FALSE(e.transient());  // sticky: with_retry did not retry it
    }

    d.sim().reset_device();
    for (auto& x : v.mutate()) x = 3;
    dbl.async(d, v).get();
    EXPECT_EQ(static_cast<int>(v[0]), 6);
}

TEST(Future, ContinuationExceptionBecomesTheFutureError) {
    cupp::device d;
    cupp::vector<int> v(16, 1);
    cupp::kernel dbl(static_cast<DoubleK>(double_elements), cusim::dim3{1},
                     cusim::dim3{32});

    bool downstream_ran = false;
    auto f = dbl.async(d, v)
                 .then([]() -> int { throw std::runtime_error("continuation boom"); })
                 .then([&](int) {
                     downstream_ran = true;
                     return 0;
                 });
    EXPECT_TRUE(f.has_error());
    EXPECT_FALSE(downstream_ran);
    EXPECT_THROW((void)f.get(), std::runtime_error);
}

TEST(Future, WhenAllPropagatesTheFirstError) {
    cupp::device d;
    cupp::stream sa(d), sb(d);
    cupp::vector<int> a(16, 1), b(16, 2);
    cupp::kernel dbl(static_cast<DoubleK>(double_elements), cusim::dim3{1},
                     cusim::dim3{32});
    dbl.set_name("half_fails");

    cusim::faults::Rule rule;
    rule.site = cusim::faults::Site::Launch;
    rule.code = cusim::ErrorCode::LaunchFailure;
    rule.nth = 1;
    rule.filter = "half_fails";
    cusim::faults::configure({rule}, /*seed=*/7);
    cupp::future<void> fa;
    {
        cupp::scoped_retry_policy only_once(attempts(1));
        fa = dbl.async(d, sa, a);  // faults
    }
    cusim::faults::reset();
    cupp::future<void> fb = dbl.async(d, sb, b);  // fine

    cupp::future<void> all = when_all(fa, fb);
    EXPECT_TRUE(all.has_error());
    EXPECT_THROW(all.get(), cupp::kernel_error);
    fb.get();  // the healthy branch still completed
    EXPECT_EQ(static_cast<int>(b[0]), 4);
}

TEST(Future, EmptyFutureSemantics) {
    cupp::future<void> empty;
    EXPECT_FALSE(empty.valid());
    EXPECT_TRUE(empty.is_ready());
    empty.wait();
    empty.get();  // ready-and-empty: a no-op

    cupp::future<int> typed;
    EXPECT_THROW((void)typed.get(), cupp::usage_error);  // no value to return
    EXPECT_THROW((void)typed.then([](int) { return 0; }), cupp::usage_error);
    EXPECT_THROW((void)empty.then([] {}), cupp::usage_error);
    EXPECT_THROW((void)when_all(empty), cupp::usage_error);
}

}  // namespace
