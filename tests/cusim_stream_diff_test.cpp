// Differential stream determinism harness: seeded random DAGs of kernel
// launches, async copies and event waits across 1-4 streams, each DAG run
// with the block engine pinned to 1, 2 and 8 worker threads. Every
// observable — final device memory, LaunchStats, memcheck reports, fault
// counters, trace event sequences, the normalized timeline report — must
// be bit-identical to the serial run: the drain order is a pure function
// of the enqueue sequence, and only the blocks *inside* one grid
// parallelize (under run_grid's launch-order reduction).
#include <gtest/gtest.h>

#include <bit>
#include <cctype>
#include <cstdint>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "cupp/trace.hpp"
#include "cusim/block_pool.hpp"
#include "cusim/cusim.hpp"
#include "cusim/faults.hpp"
#include "cusim/timeline.hpp"

namespace {

using namespace cusim;

/// Masks the process-global device ordinal ("dev3.stream1" -> "dev#.stream1",
/// '"device": 3' -> '"device": #'): each run constructs a fresh Device, so
/// the ordinal is the one legitimately run-dependent token in the report.
std::string mask_device_ordinals(std::string text) {
    for (std::size_t pos = 0; (pos = text.find("dev", pos)) != std::string::npos;) {
        std::size_t i = pos + 3;
        while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
            text.erase(i, 1);
        }
        if (i > pos + 3) text.insert(pos + 3, "#");
        pos += 4;
    }
    const std::string key = "\"device\": ";
    for (std::size_t pos = 0; (pos = text.find(key, pos)) != std::string::npos;) {
        std::size_t i = pos + key.size();
        while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
            text.erase(i, 1);
        }
        text.insert(pos + key.size(), "#");
        pos += key.size();
    }
    return text;
}

struct ThreadsGuard {
    explicit ThreadsGuard(unsigned n) { BlockPool::set_threads(n); }
    ~ThreadsGuard() { BlockPool::set_threads(0); }
};

struct EngineGuard {
    explicit EngineGuard(EngineMode m) { set_engine_mode(m); }
    ~EngineGuard() { clear_engine_mode(); }
};

/// Deterministic 64-bit mixer (splitmix64): the DAG shape, op parameters
/// and kernel payloads all derive from it, so a (seed, op-index) pair
/// fully determines the workload on every run and thread count.
struct Rng {
    std::uint64_t state;
    explicit Rng(std::uint64_t seed) : state(seed) {}
    std::uint64_t next() {
        state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }
    std::uint32_t below(std::uint32_t n) {
        return static_cast<std::uint32_t>(next() % n);
    }
};

KernelTask mix_kernel(ThreadCtx& ctx, DevicePtr<std::uint32_t> data,
                      std::uint32_t salt) {
    const std::uint64_t gid = ctx.global_id();
    const std::uint32_t v = data.read(ctx, gid);
    std::uint32_t acc = v * 2654435761u + salt;
    if (ctx.branch((gid & 1) == 0)) {
        acc ^= acc >> 7;
    }
    data.write(ctx, gid, acc + static_cast<std::uint32_t>(gid));
    co_return;
}

/// Warp-native twin of mix_kernel: identical charges per lane in identical
/// per-lane order, so every digest below must be bit-identical whichever
/// engine interprets it. memcheck is always on in this harness, which keeps
/// the warp engine on its lane-facade (exact-diagnostics) path throughout.
KernelTask mix_kernel_warp(WarpCtx& w, DevicePtr<std::uint32_t> data,
                           std::uint32_t salt) {
    std::uint64_t idx[kWarpSize];
    std::uint32_t acc[kWarpSize];
    for (unsigned l = 0; l < w.lanes(); ++l) idx[l] = w.global_id(l);
    w.read(data, idx, acc);
    std::uint32_t even = 0;
    for (unsigned l = 0; l < w.lanes(); ++l) {
        acc[l] = acc[l] * 2654435761u + salt;
        if ((idx[l] & 1) == 0) even |= 1u << l;
    }
    w.push_active(w.ballot(even));
    for (std::uint32_t m = w.active(); m != 0; m &= m - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(m));
        acc[l] ^= acc[l] >> 7;
    }
    w.pop_active();
    for (unsigned l = 0; l < w.lanes(); ++l) {
        acc[l] += static_cast<std::uint32_t>(idx[l]);
    }
    w.write(data, idx, acc);
    co_return;
}

/// Everything observable about one DAG execution, serialised for an exact
/// string comparison (memory bytes, launch stats, memcheck, faults, and a
/// trace signature for a subset of seeds).
struct RunResult {
    std::string digest;
};

constexpr std::uint32_t kElems = 64;  // per-buffer elements (2 blocks of 32)

RunResult run_dag(std::uint64_t seed, unsigned threads, bool with_trace,
                  EngineMode engine = EngineMode::Thread) {
    ThreadsGuard guard(threads);
    EngineGuard engine_guard(engine);
    memcheck::enable();
    memcheck::reset();
    // Timeline recording runs on every DAG: the normalized report (all
    // modelled times, no wall clocks) must be part of the bit-identical
    // observable set. reset() also restarts the shared correlation counter.
    timeline::reset();
    timeline::enable();
    if (with_trace) {
        cupp::trace::enable();
        cupp::trace::clear();
        cupp::trace::metrics().reset();
    }

    std::ostringstream out;
    {
        Rng rng(seed);
        Device dev(tiny_properties());
        const LaunchConfig cfg{dim3{2}, dim3{32}};

        const unsigned n_streams = 1 + rng.below(4);
        std::vector<StreamId> streams;
        for (unsigned i = 0; i < n_streams; ++i) streams.push_back(dev.stream_create());

        const unsigned n_buffers = 2 + rng.below(3);
        std::vector<DevicePtr<std::uint32_t>> buffers;
        std::vector<std::vector<std::uint32_t>> downloads;  // D2H destinations, kept alive
        for (unsigned i = 0; i < n_buffers; ++i) {
            buffers.push_back(dev.malloc_n<std::uint32_t>(kElems));
            std::vector<std::uint32_t> init(kElems);
            for (std::uint32_t j = 0; j < kElems; ++j) {
                init[j] = static_cast<std::uint32_t>(rng.next());
            }
            dev.upload(buffers.back(), std::span<const std::uint32_t>(init));
        }

        // One transient fault every few ops at the async launch/copy sites:
        // the injection counters (host-side, at enqueue) must tick
        // identically for every thread count, and every throw is caught and
        // counted. Armed only for the DAG itself — setup uploads above and
        // the result downloads below stay fault-free.
        std::vector<faults::Rule> rules;
        for (faults::Site site :
             {faults::Site::Launch, faults::Site::MemcpyH2D, faults::Site::MemcpyD2H}) {
            faults::Rule r;
            r.site = site;
            r.code = site == faults::Site::Launch ? ErrorCode::LaunchFailure
                                                  : ErrorCode::TransferFailure;
            r.every = 5;
            rules.push_back(r);
        }
        faults::configure(rules);

        std::vector<EventId> events;
        std::vector<bool> recorded;
        unsigned faults_caught = 0;

        const unsigned n_ops = 12 + rng.below(20);
        for (unsigned i = 0; i < n_ops; ++i) {
            const StreamId s = streams[rng.below(n_streams)];
            const auto buf = rng.below(n_buffers);
            try {
                switch (rng.below(8)) {
                    case 0:
                    case 1:
                    case 2: {  // kernel launch (most common)
                        const auto salt = static_cast<std::uint32_t>(rng.next());
                        dev.launch_async(
                            cfg,
                            KernelSpec(
                                [&, buf, salt](ThreadCtx& ctx) {
                                    return mix_kernel(ctx, buffers[buf], salt);
                                },
                                [&, buf, salt](WarpCtx& w) {
                                    return mix_kernel_warp(w, buffers[buf], salt);
                                }),
                            "mix", s);
                        break;
                    }
                    case 3: {  // async H2D of a fresh pattern
                        std::vector<std::uint32_t> src(kElems);
                        for (auto& v : src) v = static_cast<std::uint32_t>(rng.next());
                        // Staged at enqueue: the source dies right here.
                        dev.memcpy_to_device_async(buffers[buf].addr(), src.data(),
                                                   kElems * sizeof(std::uint32_t), s);
                        break;
                    }
                    case 4: {  // async D2H into a kept-alive destination
                        downloads.emplace_back(kElems, 0u);
                        dev.memcpy_to_host_async(downloads.back().data(),
                                                 buffers[buf].addr(),
                                                 kElems * sizeof(std::uint32_t), s);
                        break;
                    }
                    case 5: {  // record a (possibly new) event
                        if (events.empty() || rng.below(2) == 0) {
                            events.push_back(dev.event_create());
                            recorded.push_back(false);
                        }
                        const auto e = rng.below(static_cast<std::uint32_t>(events.size()));
                        dev.event_record(events[e], s);
                        recorded[e] = true;
                        break;
                    }
                    case 6: {  // cross-stream wait on a previously seen event
                        if (!events.empty()) {
                            const auto e =
                                rng.below(static_cast<std::uint32_t>(events.size()));
                            dev.stream_wait_event(s, events[e]);
                        }
                        break;
                    }
                    case 7: {  // occasional mid-DAG synchronization
                        switch (rng.below(3)) {
                            case 0: dev.stream_synchronize(s); break;
                            case 1:
                                if (!events.empty() && recorded[0]) {
                                    dev.event_synchronize(events[0]);
                                }
                                break;
                            default: dev.synchronize(); break;
                        }
                        break;
                    }
                }
            } catch (const Error&) {
                ++faults_caught;  // injected transient: counted, not retried
            }
        }
        dev.synchronize();

        out << "seed=" << seed << " streams=" << n_streams << " ops=" << n_ops
            << " faults_caught=" << faults_caught << "\n";
        out << "launches=" << dev.launches() << " h2d=" << dev.bytes_to_device()
            << " d2h=" << dev.bytes_to_host() << "\n";
        out << "stats=" << describe_json(dev.last_launch(), dev.properties().cost)
            << "\n";
        out << "injected=" << faults::injections(faults::Site::Launch) << ","
            << faults::injections(faults::Site::MemcpyH2D) << ","
            << faults::injections(faults::Site::MemcpyD2H) << "\n";
        faults::disable();  // result downloads below must not fault

        for (unsigned i = 0; i < n_buffers; ++i) {
            std::vector<std::uint32_t> host(kElems);
            dev.download(std::span<std::uint32_t>(host), buffers[i]);
            out << "buf" << i << "=";
            for (std::uint32_t v : host) out << v << ",";
            out << "\n";
        }
        for (std::size_t i = 0; i < downloads.size(); ++i) {
            out << "dl" << i << "=";
            for (std::uint32_t v : downloads[i]) out << v << ",";
            out << "\n";
        }
        out << "memcheck=" << memcheck::report_json() << "\n";
        out << "timeline=" << mask_device_ordinals(timeline::report_json());

        if (with_trace) {
            // Everything except wall-clock timestamps. Each run constructs a
            // fresh Device, so the process-global ordinal in "devN..." track
            // names is masked before comparing.
            for (const auto& e : cupp::trace::events()) {
                std::string track = e.track;
                if (track.rfind("dev", 0) == 0) {
                    std::size_t i = 3;
                    while (i < track.size() &&
                           std::isdigit(static_cast<unsigned char>(track[i]))) {
                        track.erase(i, 1);
                    }
                    track.insert(3, "#");
                }
                out << static_cast<char>(e.phase) << "|" << track << "|" << e.name;
                for (const auto& a : e.args) out << "|" << a.key << "=" << a.json;
                out << "\n";
            }
        }
        for (EventId e : events) dev.event_destroy(e);
        for (StreamId s : streams) dev.stream_destroy(s);
    }

    faults::disable();
    faults::reset();
    memcheck::disable();
    memcheck::reset();
    timeline::reset();
    if (with_trace) {
        cupp::trace::disable();
        cupp::trace::clear();
        cupp::trace::metrics().reset();
    }
    RunResult r;
    r.digest = out.str();
    return r;
}

TEST(StreamDiff, FiftyRandomDagsAreBitIdenticalAcrossThreadCounts) {
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        // Trace comparison is heavyweight; sample it on every fifth seed.
        const bool with_trace = seed % 5 == 0;
        const RunResult serial = run_dag(seed, 1, with_trace);
        for (unsigned threads : {2u, 8u}) {
            const RunResult par = run_dag(seed, threads, with_trace);
            ASSERT_EQ(par.digest, serial.digest)
                << "seed " << seed << ", " << threads << " threads";
        }
        // The warp-vectorized engine against the serial per-thread oracle:
        // one coroutine per warp must leave every observable bit-identical,
        // at any worker count.
        for (unsigned threads : {1u, 2u, 8u}) {
            const RunResult warp =
                run_dag(seed, threads, with_trace, EngineMode::Warp);
            ASSERT_EQ(warp.digest, serial.digest)
                << "seed " << seed << ", " << threads << " threads, warp engine";
        }
    }
}

// The same DAG re-run under the same seed and thread count must also be
// identical to itself (no hidden global state leaks between runs).
TEST(StreamDiff, RunsAreReproducibleUnderOneSeed) {
    const RunResult a = run_dag(99, 2, true);
    const RunResult b = run_dag(99, 2, true);
    EXPECT_EQ(a.digest, b.digest);
}

// --- captured-vs-eager differential ----------------------------------------

/// One recorded non-sync op of the replay batch. H2D sources and D2H
/// destinations live in the harness (sources re-staged per eager enqueue,
/// destinations shared by both replays so final contents are comparable).
struct LoggedOp {
    enum class Kind { Launch, H2D, D2H, Record, Wait } kind;
    StreamId stream = 0;
    unsigned buf = 0;
    std::uint32_t salt = 0;     // Launch
    std::size_t payload = 0;    // H2D: source index; D2H: destination index
    std::size_t event = 0;      // Record/Wait: event index
};

/// Runs the seeded DAG eagerly (identical RNG consumption in both modes),
/// logging every successfully enqueued non-sync op, then replays the log
/// twice — either by plain re-enqueue (`captured == false`, the oracle) or
/// through capture -> instantiate -> graph_launch. Digested observables are
/// the time-independent set: final device memory, download contents,
/// launch/transfer totals, the launch history (kernel, grid), fault
/// counters and the memcheck report. Host-side *times* legitimately differ
/// — replay charges one launch overhead for the whole DAG, which is the
/// point of the graph path — so modelled clocks stay out of this digest
/// (the timeline parity gate for a fixed workload lives in
/// bench_graph_replay + cupp_timeline --diff).
RunResult run_replay_dag(std::uint64_t seed, unsigned threads, EngineMode engine,
                         bool captured) {
    ThreadsGuard guard(threads);
    EngineGuard engine_guard(engine);
    memcheck::enable();
    memcheck::reset();

    std::ostringstream out;
    {
        Rng rng(seed);
        Device dev(tiny_properties());
        const LaunchConfig cfg{dim3{2}, dim3{32}};

        const unsigned n_streams = 1 + rng.below(4);
        std::vector<StreamId> streams;
        for (unsigned i = 0; i < n_streams; ++i) streams.push_back(dev.stream_create());

        const unsigned n_buffers = 2 + rng.below(3);
        std::vector<DevicePtr<std::uint32_t>> buffers;
        std::vector<std::vector<std::uint32_t>> downloads;
        for (unsigned i = 0; i < n_buffers; ++i) {
            buffers.push_back(dev.malloc_n<std::uint32_t>(kElems));
            std::vector<std::uint32_t> init(kElems);
            for (std::uint32_t j = 0; j < kElems; ++j) {
                init[j] = static_cast<std::uint32_t>(rng.next());
            }
            dev.upload(buffers.back(), std::span<const std::uint32_t>(init));
        }

        std::vector<faults::Rule> rules;
        for (faults::Site site :
             {faults::Site::Launch, faults::Site::MemcpyH2D, faults::Site::MemcpyD2H}) {
            faults::Rule r;
            r.site = site;
            r.code = site == faults::Site::Launch ? ErrorCode::LaunchFailure
                                                  : ErrorCode::TransferFailure;
            r.every = 5;
            rules.push_back(r);
        }
        faults::configure(rules);

        std::vector<EventId> events;
        std::vector<bool> recorded;
        unsigned faults_caught = 0;

        std::vector<LoggedOp> log;
        std::vector<std::vector<std::uint32_t>> h2d_sources;  // kept alive

        const unsigned n_ops = 12 + rng.below(20);
        for (unsigned i = 0; i < n_ops; ++i) {
            const StreamId s = streams[rng.below(n_streams)];
            const auto buf = rng.below(n_buffers);
            try {
                switch (rng.below(8)) {
                    case 0:
                    case 1:
                    case 2: {  // kernel launch (most common)
                        const auto salt = static_cast<std::uint32_t>(rng.next());
                        dev.launch_async(
                            cfg,
                            KernelSpec(
                                [&, buf, salt](ThreadCtx& ctx) {
                                    return mix_kernel(ctx, buffers[buf], salt);
                                },
                                [&, buf, salt](WarpCtx& w) {
                                    return mix_kernel_warp(w, buffers[buf], salt);
                                }),
                            "mix", s);
                        log.push_back({LoggedOp::Kind::Launch, s, buf, salt, 0, 0});
                        break;
                    }
                    case 3: {  // async H2D of a fresh pattern
                        std::vector<std::uint32_t> src(kElems);
                        for (auto& v : src) v = static_cast<std::uint32_t>(rng.next());
                        dev.memcpy_to_device_async(buffers[buf].addr(), src.data(),
                                                   kElems * sizeof(std::uint32_t), s);
                        // Enqueue succeeded: keep the pattern for the replays.
                        h2d_sources.push_back(std::move(src));
                        log.push_back({LoggedOp::Kind::H2D, s, buf, 0,
                                       h2d_sources.size() - 1, 0});
                        break;
                    }
                    case 4: {  // async D2H into a kept-alive destination
                        downloads.emplace_back(kElems, 0u);
                        dev.memcpy_to_host_async(downloads.back().data(),
                                                 buffers[buf].addr(),
                                                 kElems * sizeof(std::uint32_t), s);
                        log.push_back({LoggedOp::Kind::D2H, s, buf, 0, 0, 0});
                        break;
                    }
                    case 5: {  // record a (possibly new) event
                        if (events.empty() || rng.below(2) == 0) {
                            events.push_back(dev.event_create());
                            recorded.push_back(false);
                        }
                        const auto e = rng.below(static_cast<std::uint32_t>(events.size()));
                        dev.event_record(events[e], s);
                        recorded[e] = true;
                        log.push_back({LoggedOp::Kind::Record, s, 0, 0, 0, e});
                        break;
                    }
                    case 6: {  // cross-stream wait on a previously seen event
                        if (!events.empty()) {
                            const auto e =
                                rng.below(static_cast<std::uint32_t>(events.size()));
                            dev.stream_wait_event(s, events[e]);
                            log.push_back({LoggedOp::Kind::Wait, s, 0, 0, 0, e});
                        }
                        break;
                    }
                    case 7: {  // mid-DAG sync: executed eagerly, never logged
                        switch (rng.below(3)) {
                            case 0: dev.stream_synchronize(s); break;
                            case 1:
                                if (!events.empty() && recorded[0]) {
                                    dev.event_synchronize(events[0]);
                                }
                                break;
                            default: dev.synchronize(); break;
                        }
                        break;
                    }
                }
            } catch (const Error&) {
                ++faults_caught;
            }
        }
        dev.synchronize();
        faults::disable();  // the replay phase itself runs fault-free

        // Replay D2H ops land in buffers shared by both replays (a captured
        // op re-targets the same host pointer on every launch, so the eager
        // oracle re-enqueues into the same destination too).
        std::vector<std::vector<std::uint32_t>> replay_dst;
        for (auto& op : log) {
            if (op.kind == LoggedOp::Kind::D2H) {
                replay_dst.emplace_back(kElems, 0u);
                op.payload = replay_dst.size() - 1;
            }
        }

        const auto enqueue_log = [&] {
            for (const LoggedOp& op : log) {
                switch (op.kind) {
                    case LoggedOp::Kind::Launch: {
                        const auto buf = op.buf;
                        const auto salt = op.salt;
                        dev.launch_async(
                            cfg,
                            KernelSpec(
                                [&, buf, salt](ThreadCtx& ctx) {
                                    return mix_kernel(ctx, buffers[buf], salt);
                                },
                                [&, buf, salt](WarpCtx& w) {
                                    return mix_kernel_warp(w, buffers[buf], salt);
                                }),
                            "mix", op.stream);
                        break;
                    }
                    case LoggedOp::Kind::H2D:
                        dev.memcpy_to_device_async(buffers[op.buf].addr(),
                                                   h2d_sources[op.payload].data(),
                                                   kElems * sizeof(std::uint32_t),
                                                   op.stream);
                        break;
                    case LoggedOp::Kind::D2H:
                        dev.memcpy_to_host_async(replay_dst[op.payload].data(),
                                                 buffers[op.buf].addr(),
                                                 kElems * sizeof(std::uint32_t),
                                                 op.stream);
                        break;
                    case LoggedOp::Kind::Record:
                        dev.event_record(events[op.event], op.stream);
                        break;
                    case LoggedOp::Kind::Wait:
                        dev.stream_wait_event(op.stream, events[op.event]);
                        break;
                }
            }
        };

        if (captured) {
            // AllStreams: the logged DAG spans streams that need not be
            // event-connected to the origin.
            dev.stream_begin_capture(streams[0], CaptureMode::AllStreams);
            enqueue_log();
            Graph g = dev.stream_end_capture(streams[0]);
            GraphExec exec = dev.graph_instantiate(g);
            dev.graph_launch(exec);
            dev.synchronize();
            dev.graph_launch(exec);
            dev.synchronize();
        } else {
            enqueue_log();
            dev.synchronize();
            enqueue_log();
            dev.synchronize();
        }

        out << "seed=" << seed << " streams=" << n_streams << " ops=" << n_ops
            << " logged=" << log.size() << " faults_caught=" << faults_caught
            << "\n";
        out << "launches=" << dev.launches() << " h2d=" << dev.bytes_to_device()
            << " d2h=" << dev.bytes_to_host() << "\n";
        out << "injected=" << faults::injections(faults::Site::Launch) << ","
            << faults::injections(faults::Site::MemcpyH2D) << ","
            << faults::injections(faults::Site::MemcpyD2H) << "\n";
        for (const LaunchRecord& rec : dev.recent_launches()) {
            out << "launch=" << rec.kernel_name << "/" << rec.stats.blocks << "/"
                << rec.stats.threads << "\n";
        }
        for (unsigned i = 0; i < n_buffers; ++i) {
            std::vector<std::uint32_t> host(kElems);
            dev.download(std::span<std::uint32_t>(host), buffers[i]);
            out << "buf" << i << "=";
            for (std::uint32_t v : host) out << v << ",";
            out << "\n";
        }
        for (std::size_t i = 0; i < downloads.size(); ++i) {
            out << "dl" << i << "=";
            for (std::uint32_t v : downloads[i]) out << v << ",";
            out << "\n";
        }
        for (std::size_t i = 0; i < replay_dst.size(); ++i) {
            out << "replay_dl" << i << "=";
            for (std::uint32_t v : replay_dst[i]) out << v << ",";
            out << "\n";
        }
        out << "memcheck=" << memcheck::report_json() << "\n";

        for (EventId e : events) dev.event_destroy(e);
        for (StreamId s : streams) dev.stream_destroy(s);
    }

    faults::disable();
    faults::reset();
    memcheck::disable();
    memcheck::reset();
    RunResult r;
    r.digest = out.str();
    return r;
}

// Every seeded DAG, captured and replayed twice, must leave exactly the
// observables of the eagerly re-enqueued oracle — at every engine thread
// count and under both execution engines. This is the differential proof
// that replay's skipped per-op work (argument re-validation, per-launch
// overhead charges) was pure overhead, never semantics.
TEST(StreamDiff, CapturedReplayIsBitIdenticalToEagerReEnqueue) {
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        const RunResult eager = run_replay_dag(seed, 1, EngineMode::Thread, false);
        for (unsigned threads : {1u, 2u, 8u}) {
            for (EngineMode engine : {EngineMode::Thread, EngineMode::Warp}) {
                const RunResult replayed = run_replay_dag(seed, threads, engine, true);
                ASSERT_EQ(replayed.digest, eager.digest)
                    << "seed " << seed << ", " << threads << " threads, "
                    << (engine == EngineMode::Warp ? "warp" : "thread") << " engine";
            }
        }
    }
}

}  // namespace
