// cupp_timeline — renders a cusim::timeline report (CUPP_TIMELINE=<file>)
// as a critical-path breakdown and per-lane Gantt summary, and diffs two
// reports for makespan/critical-path regressions.
//
//   cupp_timeline <report.json> [--top=N] [--json]
//   cupp_timeline --diff <old.json> <new.json> --threshold <pct>
//                 [--device-only]
//
// The default view prints the modelled makespan, overlap efficiency, the
// critical path ranked as recorded (chronological) with per-node makespan
// shares, per-category time totals, and one line per lane with
// utilization and bubble (idle-gap) time. --json validates the report —
// schema *and* the critical-path tiling invariant (first node at 0, each
// end exactly the next start, last end exactly the makespan when the
// recorded gap is 0) — and echoes it unchanged, so pipelines can use the
// tool as a schema check. Any malformed report exits non-zero. --diff
// compares makespan, critical path, serialized time and total bubble
// seconds between two reports and exits non-zero when any regressed by
// more than --threshold percent (tools/report_diff.hpp, shared with
// cupp_prof --diff). --device-only gates on makespan and critical path
// alone — the pair a host-side change (like graph replay) must not move.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "report_diff.hpp"

namespace {

int fail(const char* what) {
    std::fprintf(stderr, "cupp_timeline: FAIL: %s\n", what);
    return 1;
}

bool num(const cupp::minijson::Value& obj, const char* key, double& out) {
    const auto* v = obj.find(key);
    if (v == nullptr || !v->is_number()) return false;
    out = v->number();
    return true;
}

bool str(const cupp::minijson::Value& obj, const char* key, std::string& out) {
    const auto* v = obj.find(key);
    if (v == nullptr || !v->is_string()) return false;
    out = v->str();
    return true;
}

/// The summary metrics both the render and the diff need.
struct Summary {
    double makespan = 0.0;
    double serialized = 0.0;
    double overlap = 0.0;
    double critical = 0.0;
    double gap = 0.0;
    double bubble_total = 0.0;
    double nodes = 0.0;
    double failed = 0.0;
    double edges = 0.0;
};

/// Validates the full schema; returns the "timeline" object (nullptr after
/// printing the failure). Checks every section the renderer and the CI
/// --json gate rely on, including the tiling invariant.
const cupp::minijson::Value* validate(const cupp::minijson::Value& root,
                                      Summary& s) {
    if (!root.is_object()) return fail("top level is not an object"), nullptr;
    const auto* tl = root.find("timeline");
    if (tl == nullptr || !tl->is_object()) {
        return fail("no timeline object"), nullptr;
    }
    double version = 0;
    if (!num(*tl, "version", version) || version != 1) {
        return fail("missing or unsupported version"), nullptr;
    }
    if (!num(*tl, "makespan_seconds", s.makespan) ||
        !num(*tl, "serialized_seconds", s.serialized) ||
        !num(*tl, "overlap_efficiency", s.overlap) ||
        !num(*tl, "critical_path_seconds", s.critical) ||
        !num(*tl, "critical_path_gap_seconds", s.gap)) {
        return fail("missing summary field"), nullptr;
    }
    const auto* counts = tl->find("counts");
    if (counts == nullptr || !counts->is_object() ||
        !num(*counts, "nodes", s.nodes) || !num(*counts, "failed", s.failed) ||
        !num(*counts, "edges", s.edges)) {
        return fail("missing counts"), nullptr;
    }

    const auto* cats = tl->find("categories");
    if (cats == nullptr || !cats->is_array()) {
        return fail("no categories array"), nullptr;
    }
    for (const auto& c : cats->array()) {
        std::string name;
        double secs = 0;
        double share = 0;
        if (!c.is_object() || !str(c, "category", name) ||
            !num(c, "seconds", secs) || !num(c, "share", share)) {
            return fail("malformed categories entry"), nullptr;
        }
    }

    const auto* lanes = tl->find("lanes");
    if (lanes == nullptr || !lanes->is_array()) {
        return fail("no lanes array"), nullptr;
    }
    for (const auto& l : lanes->array()) {
        std::string lane;
        double v = 0;
        if (!l.is_object() || !str(l, "lane", lane) || !num(l, "nodes", v) ||
            !num(l, "busy_seconds", v) || !num(l, "utilization", v) ||
            !num(l, "first_start", v) || !num(l, "last_end", v)) {
            return fail("malformed lanes entry"), nullptr;
        }
        double bubble = 0;
        if (!num(l, "bubble_seconds", bubble)) {
            return fail("lane without bubble_seconds"), nullptr;
        }
        s.bubble_total += bubble;
        const auto* bubbles = l.find("bubbles");
        if (bubbles == nullptr || !bubbles->is_array()) {
            return fail("lane without bubbles array"), nullptr;
        }
        for (const auto& b : bubbles->array()) {
            double t0 = 0;
            double t1 = 0;
            if (!b.is_object() || !num(b, "start", t0) || !num(b, "end", t1) ||
                t1 < t0) {
                return fail("malformed bubble interval"), nullptr;
            }
        }
    }

    const auto* path = tl->find("critical_path");
    if (path == nullptr || !path->is_array()) {
        return fail("no critical_path array"), nullptr;
    }
    double prev_end = 0.0;
    bool first = true;
    for (const auto& n : path->array()) {
        std::string cat;
        std::string name;
        std::string lane;
        double id = 0;
        double start = 0;
        double end = 0;
        double dur = 0;
        double share = 0;
        if (!n.is_object() || !num(n, "id", id) || !str(n, "category", cat) ||
            !str(n, "name", name) || !str(n, "lane", lane) ||
            !num(n, "start", start) || !num(n, "end", end) ||
            !num(n, "duration", dur) || !num(n, "share", share)) {
            return fail("malformed critical_path entry"), nullptr;
        }
        // The tiling invariant: %.17g round-trips doubles, so the chain
        // must be exact, not approximately contiguous.
        if (first && start != 0.0) {
            return fail("critical path does not start at 0"), nullptr;
        }
        if (!first && start != prev_end) {
            return fail("critical path is not contiguous"), nullptr;
        }
        prev_end = end;
        first = false;
    }
    if (!path->array().empty() && s.gap == 0.0) {
        if (prev_end != s.makespan) {
            return fail("critical path does not end at the makespan"), nullptr;
        }
        if (s.critical != s.makespan) {
            return fail("critical_path_seconds != makespan with zero gap"),
                   nullptr;
        }
    }

    const auto* nodes = tl->find("nodes");
    if (nodes == nullptr || !nodes->is_array()) {
        return fail("no nodes array"), nullptr;
    }
    double max_id = 0;
    for (const auto& n : nodes->array()) {
        std::string cat;
        std::string lane;
        std::string name;
        double id = 0;
        double corr = 0;
        double start = 0;
        double end = 0;
        if (!n.is_object() || !num(n, "id", id) || !num(n, "correlation", corr) ||
            !str(n, "category", cat) || !str(n, "name", name) ||
            !str(n, "lane", lane) || !num(n, "start", start) ||
            !num(n, "end", end) || end < start) {
            return fail("malformed nodes entry"), nullptr;
        }
        max_id = std::max(max_id, id);
        const auto* deps = n.find("deps");
        if (deps == nullptr || !deps->is_array()) {
            return fail("node without deps array"), nullptr;
        }
        for (const auto& d : deps->array()) {
            if (!d.is_number() || d.number() < 1 || d.number() >= id) {
                return fail("dep does not reference an earlier node"), nullptr;
            }
        }
    }
    if (nodes->array().size() != static_cast<std::size_t>(s.nodes)) {
        return fail("counts.nodes does not match the nodes array"), nullptr;
    }
    (void)max_id;
    return tl;
}

int run_diff(const char* old_path, const char* new_path, double threshold,
             bool device_only) {
    cupp::minijson::Value old_root;
    cupp::minijson::Value new_root;
    if (!cupp::tools::load_json("cupp_timeline", old_path, old_root) ||
        !cupp::tools::load_json("cupp_timeline", new_path, new_root)) {
        return 1;
    }
    Summary a;
    Summary b;
    if (validate(old_root, a) == nullptr || validate(new_root, b) == nullptr) {
        return 1;
    }
    std::printf("cupp_timeline: diff %s -> %s (threshold %g%%%s)\n", old_path,
                new_path, threshold, device_only ? ", device schedule only" : "");
    // serialized/bubble totals include the host lane, so a run that only
    // shifts host-side cost (e.g. graph replay amortising launch overhead)
    // moves them in opposite directions. --device-only gates on the two
    // metrics the device schedule alone determines.
    std::vector<cupp::tools::Metric> metrics = {
        {"makespan_seconds", a.makespan, b.makespan},
        {"critical_path_seconds", a.critical, b.critical},
    };
    if (!device_only) {
        metrics.push_back({"serialized_seconds", a.serialized, b.serialized});
        metrics.push_back({"bubble_seconds_total", a.bubble_total, b.bubble_total});
    }
    return cupp::tools::diff_metrics("cupp_timeline", metrics, threshold) > 0 ? 1
                                                                              : 0;
}

}  // namespace

int main(int argc, char** argv) {
    const char* path = nullptr;
    const char* diff_old = nullptr;
    const char* diff_new = nullptr;
    std::size_t top = 10;
    bool json_out = false;
    bool diff_mode = false;
    bool device_only = false;
    double threshold = 0.0;
    bool have_threshold = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--top=", 6) == 0) {
            char* end = nullptr;
            const long n = std::strtol(argv[i] + 6, &end, 10);
            if (end == argv[i] + 6 || *end != '\0' || n < 1) {
                std::fprintf(stderr, "cupp_timeline: bad --top value %s\n",
                             argv[i] + 6);
                return 2;
            }
            top = static_cast<std::size_t>(n);
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json_out = true;
        } else if (std::strcmp(argv[i], "--diff") == 0) {
            diff_mode = true;
        } else if (std::strcmp(argv[i], "--device-only") == 0) {
            device_only = true;
        } else if (std::strcmp(argv[i], "--threshold") == 0) {
            if (i + 1 >= argc ||
                !cupp::tools::parse_threshold(argv[i + 1], threshold)) {
                std::fprintf(stderr,
                             "cupp_timeline: --threshold needs a percentage\n");
                return 2;
            }
            have_threshold = true;
            ++i;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "cupp_timeline: unknown flag %s\n", argv[i]);
            return 2;
        } else if (diff_mode && diff_old == nullptr) {
            diff_old = argv[i];
        } else if (diff_mode && diff_new == nullptr) {
            diff_new = argv[i];
        } else if (path == nullptr) {
            path = argv[i];
        } else {
            std::fprintf(stderr, "cupp_timeline: more than one report file\n");
            return 2;
        }
    }
    if (diff_mode) {
        if (diff_old == nullptr || diff_new == nullptr || !have_threshold ||
            path != nullptr || json_out) {
            std::fprintf(stderr,
                         "usage: cupp_timeline --diff <old.json> <new.json> "
                         "--threshold <pct> [--device-only]\n");
            return 2;
        }
        return run_diff(diff_old, diff_new, threshold, device_only);
    }
    if (path == nullptr || device_only) {
        std::fprintf(stderr,
                     "usage: cupp_timeline <report.json> [--top=N] [--json]\n"
                     "       cupp_timeline --diff <old.json> <new.json> "
                     "--threshold <pct> [--device-only]\n");
        return 2;
    }

    cupp::minijson::Value root;
    if (!cupp::tools::load_json("cupp_timeline", path, root)) return 1;
    Summary s;
    const auto* tl = validate(root, s);
    if (tl == nullptr) return 1;

    if (json_out) {
        // Validated (schema + tiling invariant); echo for downstream use.
        const std::string text = [&] {
            std::ifstream in(path, std::ios::binary);
            std::ostringstream buf;
            buf << in.rdbuf();
            return buf.str();
        }();
        std::fwrite(text.data(), 1, text.size(), stdout);
        return 0;
    }

    std::printf(
        "cupp_timeline: makespan %.4f ms, serialized %.4f ms, overlap "
        "efficiency %.2fx, %.0f node(s), %.0f failed, %.0f edge(s)\n",
        s.makespan * 1e3, s.serialized * 1e3, s.overlap, s.nodes, s.failed,
        s.edges);

    std::printf("\ncategories:\n");
    for (const auto& c : tl->find("categories")->array()) {
        std::string name;
        double secs = 0;
        double share = 0;
        (void)str(c, "category", name);
        (void)num(c, "seconds", secs);
        (void)num(c, "share", share);
        std::printf("  %-8s %12.4f ms %6.1f%%\n", name.c_str(), secs * 1e3,
                    share * 100.0);
    }

    const auto& path_nodes = tl->find("critical_path")->array();
    std::printf("\ncritical path: %zu node(s), %.4f ms (gap %.3g s)\n",
                path_nodes.size(), s.critical * 1e3, s.gap);
    const std::size_t n = std::min(top, path_nodes.size());
    for (std::size_t i = 0; i < n; ++i) {
        const auto& nd = path_nodes[i];
        std::string cat;
        std::string name;
        std::string lane;
        double dur = 0;
        double share = 0;
        (void)str(nd, "category", cat);
        (void)str(nd, "name", name);
        (void)str(nd, "lane", lane);
        (void)num(nd, "duration", dur);
        (void)num(nd, "share", share);
        std::printf("  %-8s %-26s %-14s %12.4f ms %6.1f%%\n", cat.c_str(),
                    name.c_str(), lane.c_str(), dur * 1e3, share * 100.0);
    }
    if (path_nodes.size() > n) {
        std::printf("  ... %zu more node(s); raise --top to see them\n",
                    path_nodes.size() - n);
    }

    // Per-lane Gantt summary: busy vs. idle inside each lane's active span.
    std::printf("\nlanes:\n");
    for (const auto& l : tl->find("lanes")->array()) {
        std::string lane;
        double nodes_in_lane = 0;
        double busy = 0;
        double util = 0;
        double bubble = 0;
        (void)str(l, "lane", lane);
        (void)num(l, "nodes", nodes_in_lane);
        (void)num(l, "busy_seconds", busy);
        (void)num(l, "utilization", util);
        (void)num(l, "bubble_seconds", bubble);
        std::printf(
            "  %-14s %5.0f node(s) %12.4f ms busy %6.1f%% util %10.4f ms "
            "bubble (%zu gap(s))\n",
            lane.c_str(), nodes_in_lane, busy * 1e3, util * 100.0, bubble * 1e3,
            l.find("bubbles")->array().size());
    }
    return 0;
}
