// cupp_prof — renders a cusim::prof report (CUPP_PROF=<report.json>) as a
// per-kernel hot-spot table, nvprof-style.
//
//   cupp_prof <report.json> [--top=N] [--sort=device_time|host_time|bytes]
//             [--json]
//   cupp_prof --diff <old.json> <new.json> --threshold <pct>
//
// The default view ranks kernels by modelled device time and prints the
// derived metrics next to each (achieved occupancy, coalescing efficiency,
// divergence serialization, bank conflicts, roofline bound). --json
// validates the report and echoes it unchanged, so pipelines can use this
// tool as a schema check (exit 0 iff the report is well-formed). Any
// malformed report — bad JSON, missing sections, wrong field types — exits
// non-zero. --diff compares total and per-kernel modelled device time and
// transfer time between two reports and exits non-zero when any regressed
// by more than --threshold percent (tools/report_diff.hpp, shared with
// cupp_timeline --diff) — checked-in BENCH_*_prof.json artifacts become
// regression guards.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "report_diff.hpp"

namespace {

int fail(const char* what) {
    std::fprintf(stderr, "cupp_prof: FAIL: %s\n", what);
    return 1;
}

/// One row of the table, pulled out of the validated JSON.
struct Row {
    std::string name;
    std::string config;
    double launches = 0;
    double device_seconds = 0;
    double host_seconds = 0;
    double bytes = 0;
    double occupancy = 0;
    double coalescing = 0;
    double divergence = 0;
    double bank_conflicts = 0;
    std::string bound;
};

bool num(const cupp::minijson::Value& obj, const char* key, double& out) {
    const auto* v = obj.find(key);
    if (v == nullptr || !v->is_number()) return false;
    out = v->number();
    return true;
}

/// The diffable slice of one report: modelled (deterministic) times only —
/// host wall seconds are real time and would flake any threshold.
struct ProfSummary {
    double total_device_seconds = 0.0;
    double transfer_seconds = 0.0;
    std::map<std::string, double> kernel_device_seconds;  ///< by name, summed
};

bool summarize(const char* path, const cupp::minijson::Value& root,
               ProfSummary& s) {
    const auto* prof = root.is_object() ? root.find("prof") : nullptr;
    const auto* kernels =
        prof != nullptr && prof->is_object() ? prof->find("kernels") : nullptr;
    const auto* transfers =
        prof != nullptr && prof->is_object() ? prof->find("transfers") : nullptr;
    if (kernels == nullptr || !kernels->is_array() || transfers == nullptr ||
        !transfers->is_object()) {
        std::fprintf(stderr, "cupp_prof: FAIL: %s is not a prof report\n", path);
        return false;
    }
    for (const auto& k : kernels->array()) {
        const auto* name = k.is_object() ? k.find("name") : nullptr;
        double secs = 0;
        if (name == nullptr || !name->is_string() ||
            !num(k, "device_seconds", secs)) {
            std::fprintf(stderr, "cupp_prof: FAIL: %s: malformed kernel entry\n",
                         path);
            return false;
        }
        s.total_device_seconds += secs;
        s.kernel_device_seconds[name->str()] += secs;
    }
    for (const char* kind : {"h2d", "d2h", "d2d"}) {
        const auto* t = transfers->find(kind);
        double secs = 0;
        if (t == nullptr || !t->is_object() || !num(*t, "seconds", secs)) {
            std::fprintf(stderr, "cupp_prof: FAIL: %s: malformed transfers\n",
                         path);
            return false;
        }
        s.transfer_seconds += secs;
    }
    return true;
}

int run_diff(const char* old_path, const char* new_path, double threshold) {
    cupp::minijson::Value old_root;
    cupp::minijson::Value new_root;
    if (!cupp::tools::load_json("cupp_prof", old_path, old_root) ||
        !cupp::tools::load_json("cupp_prof", new_path, new_root)) {
        return 1;
    }
    ProfSummary a;
    ProfSummary b;
    if (!summarize(old_path, old_root, a) || !summarize(new_path, new_root, b)) {
        return 1;
    }
    std::printf("cupp_prof: diff %s -> %s (threshold %g%%)\n", old_path,
                new_path, threshold);
    std::vector<cupp::tools::Metric> metrics = {
        {"total_device_seconds", a.total_device_seconds, b.total_device_seconds},
        {"transfer_seconds", a.transfer_seconds, b.transfer_seconds},
    };
    // Per-kernel times for kernels present in both reports (an added or
    // removed kernel changes the totals, which the first metric catches).
    for (const auto& [name, secs] : a.kernel_device_seconds) {
        const auto it = b.kernel_device_seconds.find(name);
        if (it != b.kernel_device_seconds.end()) {
            metrics.push_back({"kernel " + name, secs, it->second});
        }
    }
    return cupp::tools::diff_metrics("cupp_prof", metrics, threshold) > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
    const char* path = nullptr;
    const char* diff_old = nullptr;
    const char* diff_new = nullptr;
    std::size_t top = 10;
    std::string sort_key = "device_time";
    bool json_out = false;
    bool diff_mode = false;
    double threshold = 0.0;
    bool have_threshold = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--top=", 6) == 0) {
            char* end = nullptr;
            const long n = std::strtol(argv[i] + 6, &end, 10);
            if (end == argv[i] + 6 || *end != '\0' || n < 1) {
                std::fprintf(stderr, "cupp_prof: bad --top value %s\n", argv[i] + 6);
                return 2;
            }
            top = static_cast<std::size_t>(n);
        } else if (std::strncmp(argv[i], "--sort=", 7) == 0) {
            sort_key = argv[i] + 7;
            if (sort_key != "device_time" && sort_key != "host_time" &&
                sort_key != "bytes") {
                std::fprintf(stderr,
                             "cupp_prof: --sort must be device_time, host_time or "
                             "bytes (got %s)\n",
                             sort_key.c_str());
                return 2;
            }
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json_out = true;
        } else if (std::strcmp(argv[i], "--diff") == 0) {
            diff_mode = true;
        } else if (std::strcmp(argv[i], "--threshold") == 0) {
            if (i + 1 >= argc ||
                !cupp::tools::parse_threshold(argv[i + 1], threshold)) {
                std::fprintf(stderr, "cupp_prof: --threshold needs a percentage\n");
                return 2;
            }
            have_threshold = true;
            ++i;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "cupp_prof: unknown flag %s\n", argv[i]);
            return 2;
        } else if (diff_mode && diff_old == nullptr) {
            diff_old = argv[i];
        } else if (diff_mode && diff_new == nullptr) {
            diff_new = argv[i];
        } else if (path == nullptr) {
            path = argv[i];
        } else {
            std::fprintf(stderr, "cupp_prof: more than one report file\n");
            return 2;
        }
    }
    if (diff_mode) {
        if (diff_old == nullptr || diff_new == nullptr || !have_threshold ||
            path != nullptr || json_out) {
            std::fprintf(stderr,
                         "usage: cupp_prof --diff <old.json> <new.json> "
                         "--threshold <pct>\n");
            return 2;
        }
        return run_diff(diff_old, diff_new, threshold);
    }
    if (path == nullptr) {
        std::fprintf(stderr,
                     "usage: cupp_prof <report.json> [--top=N] "
                     "[--sort=device_time|host_time|bytes] [--json]\n"
                     "       cupp_prof --diff <old.json> <new.json> "
                     "--threshold <pct>\n");
        return 2;
    }

    std::ifstream in(path, std::ios::binary);
    if (!in) return fail("cannot open report file");
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    if (text.empty()) return fail("report file is empty");

    cupp::minijson::Value root;
    try {
        root = cupp::minijson::parse(text);
    } catch (const cupp::minijson::parse_error& e) {
        std::fprintf(stderr, "cupp_prof: FAIL: invalid JSON: %s\n", e.what());
        return 1;
    }
    if (!root.is_object()) return fail("top level is not an object");
    const auto* prof = root.find("prof");
    if (prof == nullptr || !prof->is_object()) return fail("no prof object");
    const auto* model = prof->find("model");
    if (model == nullptr || !model->is_object()) return fail("no model object");
    const auto* kernels = prof->find("kernels");
    if (kernels == nullptr || !kernels->is_array()) return fail("no kernels array");
    const auto* hotspots = prof->find("hotspots");
    if (hotspots == nullptr || !hotspots->is_array()) return fail("no hotspots array");
    const auto* transfers = prof->find("transfers");
    if (transfers == nullptr || !transfers->is_object()) {
        return fail("no transfers object");
    }

    std::vector<Row> rows;
    for (const auto& k : kernels->array()) {
        if (!k.is_object()) return fail("kernels entry is not an object");
        const auto* name = k.find("name");
        if (name == nullptr || !name->is_string()) return fail("kernel without name");
        Row r;
        r.name = name->str();
        // Every numeric field the table renders must be present and numeric;
        // a report missing one is malformed, not partially printable.
        struct Want {
            const char* key;
            double Row::* field;
        };
        const Want wants[] = {
            {"launches", &Row::launches},
            {"device_seconds", &Row::device_seconds},
            {"host_seconds", &Row::host_seconds},
            {"occupancy", &Row::occupancy},
            {"coalescing_efficiency", &Row::coalescing},
            {"divergence_serialization", &Row::divergence},
            {"shared_bank_conflicts", &Row::bank_conflicts},
        };
        for (const Want& w : wants) {
            if (!num(k, w.key, r.*(w.field))) {
                std::fprintf(stderr, "cupp_prof: FAIL: kernel %s: missing %s\n",
                             r.name.c_str(), w.key);
                return 1;
            }
        }
        double br = 0;
        double bw = 0;
        if (!num(k, "bytes_read", br) || !num(k, "bytes_written", bw)) {
            return fail("kernel without byte counts");
        }
        r.bytes = br + bw;
        if (const auto* b = k.find("roofline_bound"); b != nullptr && b->is_string()) {
            r.bound = b->str();
        }
        const auto* grid = k.find("grid");
        const auto* block = k.find("block");
        if (grid != nullptr && grid->is_array() && grid->array().size() == 3 &&
            block != nullptr && block->is_array() && block->array().size() == 3) {
            char cfg[64];
            std::snprintf(cfg, sizeof(cfg), "<<<%g,%g>>>",
                          grid->array()[0].number() * grid->array()[1].number() *
                              grid->array()[2].number(),
                          block->array()[0].number() * block->array()[1].number() *
                              block->array()[2].number());
            r.config = cfg;
        }
        rows.push_back(std::move(r));
    }
    for (const auto& h : hotspots->array()) {
        double unused = 0;
        if (!h.is_object() || h.find("name") == nullptr ||
            !num(h, "device_seconds", unused)) {
            return fail("malformed hotspots entry");
        }
    }

    if (json_out) {
        // Validated; echo the document for downstream consumers.
        std::fwrite(text.data(), 1, text.size(), stdout);
        return 0;
    }

    std::sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
        const auto key = [&](const Row& r) {
            if (sort_key == "host_time") return r.host_seconds;
            if (sort_key == "bytes") return r.bytes;
            return r.device_seconds;
        };
        if (key(a) != key(b)) return key(a) > key(b);
        return a.name < b.name;
    });

    double total_device = 0;
    for (const Row& r : rows) total_device += r.device_seconds;

    if (double ridge = 0; num(*model, "ridge_cycles_per_byte", ridge)) {
        std::printf("cupp_prof: %zu kernel(s), %.3f ms modelled device time, "
                    "roofline ridge %.3f cycles/byte (sorted by %s)\n",
                    rows.size(), total_device * 1e3, ridge, sort_key.c_str());
    }
    std::printf(
        "%-26s %8s %12s %12s %7s %6s %6s %6s %10s %8s\n", "kernel", "launches",
        "device_ms", "host_ms", "time%", "occ", "coal", "div", "bankconf", "bound");
    const std::size_t n = std::min(top, rows.size());
    for (std::size_t i = 0; i < n; ++i) {
        const Row& r = rows[i];
        const std::string label =
            r.name + (r.config.empty() ? "" : " " + r.config);
        std::printf("%-26s %8.0f %12.4f %12.4f %6.1f%% %5.0f%% %5.0f%% %6.2f "
                    "%10.0f %8s\n",
                    label.c_str(), r.launches, r.device_seconds * 1e3,
                    r.host_seconds * 1e3,
                    total_device > 0 ? 100.0 * r.device_seconds / total_device : 0.0,
                    r.occupancy * 100.0, r.coalescing * 100.0, r.divergence,
                    r.bank_conflicts, r.bound.c_str());
    }
    if (rows.size() > n) {
        std::printf("  ... %zu more kernel(s); raise --top to see them\n",
                    rows.size() - n);
    }

    // Transfer footer: what moved over the bus around those kernels.
    for (const char* kind : {"h2d", "d2h", "d2d"}) {
        const auto* t = transfers->find(kind);
        if (t == nullptr || !t->is_object()) continue;
        double count = 0;
        double bytes = 0;
        double seconds = 0;
        if (!num(*t, "count", count) || !num(*t, "bytes", bytes) ||
            !num(*t, "seconds", seconds)) {
            return fail("malformed transfers entry");
        }
        if (count == 0) continue;
        std::printf("transfers %s: %.0f op(s), %.1f KiB, %.4f ms\n", kind, count,
                    bytes / 1024.0, seconds * 1e3);
    }
    return 0;
}
