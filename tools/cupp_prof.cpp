// cupp_prof — renders a cusim::prof report (CUPP_PROF=<report.json>) as a
// per-kernel hot-spot table, nvprof-style.
//
//   cupp_prof <report.json> [--top=N] [--sort=device_time|host_time|bytes]
//             [--json]
//
// The default view ranks kernels by modelled device time and prints the
// derived metrics next to each (achieved occupancy, coalescing efficiency,
// divergence serialization, bank conflicts, roofline bound). --json
// validates the report and echoes it unchanged, so pipelines can use this
// tool as a schema check (exit 0 iff the report is well-formed). Any
// malformed report — bad JSON, missing sections, wrong field types — exits
// non-zero.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cupp/detail/minijson.hpp"

namespace {

int fail(const char* what) {
    std::fprintf(stderr, "cupp_prof: FAIL: %s\n", what);
    return 1;
}

/// One row of the table, pulled out of the validated JSON.
struct Row {
    std::string name;
    std::string config;
    double launches = 0;
    double device_seconds = 0;
    double host_seconds = 0;
    double bytes = 0;
    double occupancy = 0;
    double coalescing = 0;
    double divergence = 0;
    double bank_conflicts = 0;
    std::string bound;
};

bool num(const cupp::minijson::Value& obj, const char* key, double& out) {
    const auto* v = obj.find(key);
    if (v == nullptr || !v->is_number()) return false;
    out = v->number();
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    const char* path = nullptr;
    std::size_t top = 10;
    std::string sort_key = "device_time";
    bool json_out = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--top=", 6) == 0) {
            char* end = nullptr;
            const long n = std::strtol(argv[i] + 6, &end, 10);
            if (end == argv[i] + 6 || *end != '\0' || n < 1) {
                std::fprintf(stderr, "cupp_prof: bad --top value %s\n", argv[i] + 6);
                return 2;
            }
            top = static_cast<std::size_t>(n);
        } else if (std::strncmp(argv[i], "--sort=", 7) == 0) {
            sort_key = argv[i] + 7;
            if (sort_key != "device_time" && sort_key != "host_time" &&
                sort_key != "bytes") {
                std::fprintf(stderr,
                             "cupp_prof: --sort must be device_time, host_time or "
                             "bytes (got %s)\n",
                             sort_key.c_str());
                return 2;
            }
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json_out = true;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "cupp_prof: unknown flag %s\n", argv[i]);
            return 2;
        } else if (path == nullptr) {
            path = argv[i];
        } else {
            std::fprintf(stderr, "cupp_prof: more than one report file\n");
            return 2;
        }
    }
    if (path == nullptr) {
        std::fprintf(stderr,
                     "usage: cupp_prof <report.json> [--top=N] "
                     "[--sort=device_time|host_time|bytes] [--json]\n");
        return 2;
    }

    std::ifstream in(path, std::ios::binary);
    if (!in) return fail("cannot open report file");
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    if (text.empty()) return fail("report file is empty");

    cupp::minijson::Value root;
    try {
        root = cupp::minijson::parse(text);
    } catch (const cupp::minijson::parse_error& e) {
        std::fprintf(stderr, "cupp_prof: FAIL: invalid JSON: %s\n", e.what());
        return 1;
    }
    if (!root.is_object()) return fail("top level is not an object");
    const auto* prof = root.find("prof");
    if (prof == nullptr || !prof->is_object()) return fail("no prof object");
    const auto* model = prof->find("model");
    if (model == nullptr || !model->is_object()) return fail("no model object");
    const auto* kernels = prof->find("kernels");
    if (kernels == nullptr || !kernels->is_array()) return fail("no kernels array");
    const auto* hotspots = prof->find("hotspots");
    if (hotspots == nullptr || !hotspots->is_array()) return fail("no hotspots array");
    const auto* transfers = prof->find("transfers");
    if (transfers == nullptr || !transfers->is_object()) {
        return fail("no transfers object");
    }

    std::vector<Row> rows;
    for (const auto& k : kernels->array()) {
        if (!k.is_object()) return fail("kernels entry is not an object");
        const auto* name = k.find("name");
        if (name == nullptr || !name->is_string()) return fail("kernel without name");
        Row r;
        r.name = name->str();
        // Every numeric field the table renders must be present and numeric;
        // a report missing one is malformed, not partially printable.
        struct Want {
            const char* key;
            double Row::* field;
        };
        const Want wants[] = {
            {"launches", &Row::launches},
            {"device_seconds", &Row::device_seconds},
            {"host_seconds", &Row::host_seconds},
            {"occupancy", &Row::occupancy},
            {"coalescing_efficiency", &Row::coalescing},
            {"divergence_serialization", &Row::divergence},
            {"shared_bank_conflicts", &Row::bank_conflicts},
        };
        for (const Want& w : wants) {
            if (!num(k, w.key, r.*(w.field))) {
                std::fprintf(stderr, "cupp_prof: FAIL: kernel %s: missing %s\n",
                             r.name.c_str(), w.key);
                return 1;
            }
        }
        double br = 0;
        double bw = 0;
        if (!num(k, "bytes_read", br) || !num(k, "bytes_written", bw)) {
            return fail("kernel without byte counts");
        }
        r.bytes = br + bw;
        if (const auto* b = k.find("roofline_bound"); b != nullptr && b->is_string()) {
            r.bound = b->str();
        }
        const auto* grid = k.find("grid");
        const auto* block = k.find("block");
        if (grid != nullptr && grid->is_array() && grid->array().size() == 3 &&
            block != nullptr && block->is_array() && block->array().size() == 3) {
            char cfg[64];
            std::snprintf(cfg, sizeof(cfg), "<<<%g,%g>>>",
                          grid->array()[0].number() * grid->array()[1].number() *
                              grid->array()[2].number(),
                          block->array()[0].number() * block->array()[1].number() *
                              block->array()[2].number());
            r.config = cfg;
        }
        rows.push_back(std::move(r));
    }
    for (const auto& h : hotspots->array()) {
        double unused = 0;
        if (!h.is_object() || h.find("name") == nullptr ||
            !num(h, "device_seconds", unused)) {
            return fail("malformed hotspots entry");
        }
    }

    if (json_out) {
        // Validated; echo the document for downstream consumers.
        std::fwrite(text.data(), 1, text.size(), stdout);
        return 0;
    }

    std::sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
        const auto key = [&](const Row& r) {
            if (sort_key == "host_time") return r.host_seconds;
            if (sort_key == "bytes") return r.bytes;
            return r.device_seconds;
        };
        if (key(a) != key(b)) return key(a) > key(b);
        return a.name < b.name;
    });

    double total_device = 0;
    for (const Row& r : rows) total_device += r.device_seconds;

    if (double ridge = 0; num(*model, "ridge_cycles_per_byte", ridge)) {
        std::printf("cupp_prof: %zu kernel(s), %.3f ms modelled device time, "
                    "roofline ridge %.3f cycles/byte (sorted by %s)\n",
                    rows.size(), total_device * 1e3, ridge, sort_key.c_str());
    }
    std::printf(
        "%-26s %8s %12s %12s %7s %6s %6s %6s %10s %8s\n", "kernel", "launches",
        "device_ms", "host_ms", "time%", "occ", "coal", "div", "bankconf", "bound");
    const std::size_t n = std::min(top, rows.size());
    for (std::size_t i = 0; i < n; ++i) {
        const Row& r = rows[i];
        const std::string label =
            r.name + (r.config.empty() ? "" : " " + r.config);
        std::printf("%-26s %8.0f %12.4f %12.4f %6.1f%% %5.0f%% %5.0f%% %6.2f "
                    "%10.0f %8s\n",
                    label.c_str(), r.launches, r.device_seconds * 1e3,
                    r.host_seconds * 1e3,
                    total_device > 0 ? 100.0 * r.device_seconds / total_device : 0.0,
                    r.occupancy * 100.0, r.coalescing * 100.0, r.divergence,
                    r.bank_conflicts, r.bound.c_str());
    }
    if (rows.size() > n) {
        std::printf("  ... %zu more kernel(s); raise --top to see them\n",
                    rows.size() - n);
    }

    // Transfer footer: what moved over the bus around those kernels.
    for (const char* kind : {"h2d", "d2h", "d2d"}) {
        const auto* t = transfers->find(kind);
        if (t == nullptr || !t->is_object()) continue;
        double count = 0;
        double bytes = 0;
        double seconds = 0;
        if (!num(*t, "count", count) || !num(*t, "bytes", bytes) ||
            !num(*t, "seconds", seconds)) {
            return fail("malformed transfers entry");
        }
        if (count == 0) continue;
        std::printf("transfers %s: %.0f op(s), %.1f KiB, %.4f ms\n", kind, count,
                    bytes / 1024.0, seconds * 1e3);
    }
    return 0;
}
