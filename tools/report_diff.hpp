// Shared report-diff helper for the cupp_* report tools.
//
// cupp_prof --diff and cupp_timeline --diff both compare two JSON reports
// of the same schema metric-by-metric and fail (exit 1) when any
// lower-is-better metric regressed by more than --threshold percent. The
// loading, table rendering, and regression arithmetic live here so the two
// tools agree on what "regressed" means; each tool only decides *which*
// metrics to compare.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cupp/detail/minijson.hpp"

namespace cupp::tools {

/// One compared metric. All metrics are lower-is-better (times, bubbles).
struct Metric {
    std::string name;
    double old_value = 0.0;
    double new_value = 0.0;
};

/// Reads and parses a JSON report; false (with a message on stderr) when
/// the file is unreadable, empty, or not valid JSON.
inline bool load_json(const char* tool, const char* path,
                      cupp::minijson::Value& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "%s: FAIL: cannot open %s\n", tool, path);
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    if (text.empty()) {
        std::fprintf(stderr, "%s: FAIL: %s is empty\n", tool, path);
        return false;
    }
    try {
        out = cupp::minijson::parse(text);
    } catch (const cupp::minijson::parse_error& e) {
        std::fprintf(stderr, "%s: FAIL: %s: invalid JSON: %s\n", tool, path,
                     e.what());
        return false;
    }
    return true;
}

/// Parses the value of a "--threshold" flag (plain percentage, >= 0);
/// false on malformed input.
inline bool parse_threshold(const char* arg, double& out) {
    char* end = nullptr;
    const double v = std::strtod(arg, &end);
    if (end == arg || *end != '\0' || !(v >= 0.0) || std::isnan(v)) return false;
    out = v;
    return true;
}

/// Seconds-scale absolute floor below which a delta is noise, not a
/// regression — keeps a 0 -> 1e-15 rounding wiggle from failing a build.
inline constexpr double kAbsoluteFloor = 1e-12;

/// True when `new_value` regressed past `old_value` by more than
/// `threshold_pct` percent (and by more than the absolute floor).
inline bool regressed(double old_value, double new_value, double threshold_pct) {
    if (new_value - old_value <= kAbsoluteFloor) return false;
    return new_value > old_value * (1.0 + threshold_pct / 100.0);
}

/// Renders the comparison table and returns the number of regressions.
/// A tool's --diff mode exits non-zero iff this returns > 0.
inline int diff_metrics(const char* tool, const std::vector<Metric>& metrics,
                        double threshold_pct) {
    int regressions = 0;
    std::printf("%-34s %16s %16s %9s\n", "metric", "old", "new", "delta");
    for (const Metric& m : metrics) {
        const double delta = m.new_value - m.old_value;
        const double pct =
            m.old_value != 0.0 ? delta / m.old_value * 100.0
                               : (m.new_value != 0.0 ? INFINITY : 0.0);
        const bool bad = regressed(m.old_value, m.new_value, threshold_pct);
        if (bad) ++regressions;
        std::printf("%-34s %16.9g %16.9g %+8.2f%%%s\n", m.name.c_str(),
                    m.old_value, m.new_value, pct,
                    bad ? "  REGRESSED" : "");
    }
    if (regressions > 0) {
        std::fprintf(stderr,
                     "%s: FAIL: %d metric(s) regressed by more than %g%%\n",
                     tool, regressions, threshold_pct);
    } else {
        std::printf("%s: OK: no metric regressed by more than %g%%\n", tool,
                    threshold_pct);
    }
    return regressions;
}

}  // namespace cupp::tools
