// memcheck_check — validates a violation report produced by cusim::memcheck.
//
//   memcheck_check <report.json> [--require-clean] [--expect KIND]...
//
// Exit code 0 iff the file parses as JSON with the expected memcheck
// structure and satisfies every requested check:
//   --require-clean   total_violations must be 0 (the CI gate: a program
//                     ran under CUPP_MEMCHECK without a single finding)
//   --expect KIND     at least one violation of `KIND` must be present
//                     (kind names as in the report: use_after_free, leak,
//                     uninitialized_read, shared_race, ...), with a
//                     non-empty message — used by tests that inject bugs.
// Used by the CTest case that runs boids_demo under CUPP_MEMCHECK, and
// standalone when triaging a report.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cupp/detail/minijson.hpp"

namespace {

int fail(const char* what) {
    std::fprintf(stderr, "memcheck_check: FAIL: %s\n", what);
    return 1;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: memcheck_check <report.json> [--require-clean] "
                     "[--expect KIND]...\n");
        return 2;
    }
    bool require_clean = false;
    std::vector<std::string> expected;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--require-clean") == 0) {
            require_clean = true;
        } else if (std::strcmp(argv[i], "--expect") == 0 && i + 1 < argc) {
            expected.emplace_back(argv[++i]);
        } else {
            std::fprintf(stderr, "memcheck_check: unknown flag %s\n", argv[i]);
            return 2;
        }
    }

    std::ifstream in(argv[1], std::ios::binary);
    if (!in) return fail("cannot open report file");
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    if (text.empty()) return fail("report file is empty");

    cupp::minijson::Value root;
    try {
        root = cupp::minijson::parse(text);
    } catch (const cupp::minijson::parse_error& e) {
        std::fprintf(stderr, "memcheck_check: FAIL: invalid JSON: %s\n", e.what());
        return 1;
    }
    if (!root.is_object()) return fail("top level is not an object");
    const auto* mc = root.find("memcheck");
    if (mc == nullptr || !mc->is_object()) return fail("no memcheck object");
    const auto* total = mc->find("total_violations");
    if (total == nullptr || !total->is_number()) return fail("no total_violations");
    const auto* list = mc->find("violations");
    if (list == nullptr || !list->is_array()) return fail("no violations array");

    std::size_t counted = 0;
    for (const auto& v : list->array()) {
        if (!v.is_object()) return fail("violations entry is not an object");
        const auto* kind = v.find("kind");
        const auto* message = v.find("message");
        const auto* count = v.find("count");
        if (kind == nullptr || !kind->is_string()) return fail("violation without kind");
        if (message == nullptr || !message->is_string() || message->str().empty()) {
            return fail("violation without message");
        }
        if (count == nullptr || !count->is_number() || count->number() < 1) {
            return fail("violation without occurrence count");
        }
        counted += static_cast<std::size_t>(count->number());
    }
    if (counted > static_cast<std::size_t>(total->number())) {
        return fail("violation counts exceed total_violations");
    }

    if (require_clean && total->number() != 0) {
        std::fprintf(stderr, "memcheck_check: FAIL: %g violation(s) reported:\n",
                     total->number());
        for (const auto& v : list->array()) {
            std::fprintf(stderr, "  %s\n", v.find("message")->str().c_str());
        }
        return 1;
    }
    for (const std::string& kind : expected) {
        bool found = false;
        for (const auto& v : list->array()) {
            if (v.find("kind")->str() == kind) {
                found = true;
                break;
            }
        }
        if (!found) {
            std::fprintf(stderr,
                         "memcheck_check: FAIL: expected a %s violation, none found\n",
                         kind.c_str());
            return 1;
        }
    }

    std::printf("memcheck_check: OK: %g total violation(s), %zu distinct\n",
                total->number(), list->array().size());
    return 0;
}
