// faults_check — validates cusim::faults inputs and outputs.
//
//   faults_check --plan <plan.json>
//   faults_check <report.json> [--min-injections N] [--expect-site SITE]
//                              [--expect-code CODE]
//
// Plan mode (exit 0 iff the plan would load): parses the JSON and applies
// the same structural rules the runtime enforces — every rule names a valid
// site and code, probability lies in [0,1], "max" (if given) is >= 1, and
// at least one trigger (nth / every / probability) is set.
//
// Report mode validates a report written via CUPP_FAULTS_REPORT:
//   --min-injections N   total_injections must be >= N (the CI gate: the
//                        plan actually fired, the run didn't dodge it)
//   --expect-site SITE   at least one rule on `SITE` must have injected
//                        (site names as in the report: malloc, memcpy_h2d,
//                        memcpy_d2h, memcpy_d2d, launch, sync)
//   --expect-code CODE   at least one injecting rule must carry `CODE`
//                        (code names as in the report: memory_allocation,
//                        transfer_failure, launch_failure, device_lost, ...)
// Used by the CTest case that runs boids_demo under CUPP_FAULTS, and
// standalone when triaging a fault plan or report.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cupp/detail/minijson.hpp"
#include "cusim/faults.hpp"

namespace {

int fail(const char* what) {
    std::fprintf(stderr, "faults_check: FAIL: %s\n", what);
    return 1;
}

std::string slurp(const char* path, bool* ok) {
    std::ifstream in(path, std::ios::binary);
    *ok = static_cast<bool>(in);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

int check_plan(const char* path) {
    try {
        cusim::faults::enable_from_plan(path);
    } catch (const cusim::Error& e) {
        cusim::faults::reset();
        std::fprintf(stderr, "faults_check: FAIL: %s\n", e.what());
        return 1;
    }
    const std::size_t rules = cusim::faults::rules().size();
    cusim::faults::reset();
    std::printf("faults_check: OK: plan %s loads (%zu rule(s))\n", path, rules);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: faults_check --plan <plan.json>\n"
                     "       faults_check <report.json> [--min-injections N] "
                     "[--expect-site SITE] [--expect-code CODE]\n");
        return 2;
    }
    if (std::strcmp(argv[1], "--plan") == 0) {
        if (argc != 3) {
            std::fprintf(stderr, "faults_check: --plan takes exactly one file\n");
            return 2;
        }
        return check_plan(argv[2]);
    }

    double min_injections = -1.0;
    std::vector<std::string> expect_sites;
    std::vector<std::string> expect_codes;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--min-injections") == 0 && i + 1 < argc) {
            min_injections = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--expect-site") == 0 && i + 1 < argc) {
            expect_sites.emplace_back(argv[++i]);
        } else if (std::strcmp(argv[i], "--expect-code") == 0 && i + 1 < argc) {
            expect_codes.emplace_back(argv[++i]);
        } else {
            std::fprintf(stderr, "faults_check: unknown flag %s\n", argv[i]);
            return 2;
        }
    }

    bool ok = false;
    const std::string text = slurp(argv[1], &ok);
    if (!ok) return fail("cannot open report file");
    if (text.empty()) return fail("report file is empty");

    cupp::minijson::Value root;
    try {
        root = cupp::minijson::parse(text);
    } catch (const cupp::minijson::parse_error& e) {
        std::fprintf(stderr, "faults_check: FAIL: invalid JSON: %s\n", e.what());
        return 1;
    }
    if (!root.is_object()) return fail("top level is not an object");
    const auto* f = root.find("faults");
    if (f == nullptr || !f->is_object()) return fail("no faults object");
    const auto* total = f->find("total_injections");
    if (total == nullptr || !total->is_number()) return fail("no total_injections");
    const auto* rules = f->find("rules");
    if (rules == nullptr || !rules->is_array()) return fail("no rules array");

    double per_rule = 0.0;
    for (const auto& r : rules->array()) {
        if (!r.is_object()) return fail("rules entry is not an object");
        const auto* site = r.find("site");
        const auto* code = r.find("code");
        const auto* injected = r.find("injected");
        cusim::faults::Site parsed_site{};
        if (site == nullptr || !site->is_string() ||
            !cusim::faults::parse_site(site->str(), &parsed_site)) {
            return fail("rule without a valid site");
        }
        cusim::ErrorCode parsed_code{};
        if (code == nullptr || !code->is_string() ||
            !cusim::faults::parse_code(code->str(), &parsed_code)) {
            return fail("rule without a valid code");
        }
        if (injected == nullptr || !injected->is_number() || injected->number() < 0) {
            return fail("rule without an injection count");
        }
        per_rule += injected->number();
    }
    if (per_rule != total->number()) {
        return fail("per-rule injection counts do not sum to total_injections");
    }

    if (min_injections >= 0 && total->number() < min_injections) {
        std::fprintf(stderr,
                     "faults_check: FAIL: %g injection(s), expected at least %g\n",
                     total->number(), min_injections);
        return 1;
    }
    for (const std::string& site : expect_sites) {
        bool found = false;
        for (const auto& r : rules->array()) {
            if (r.find("site")->str() == site && r.find("injected")->number() > 0) {
                found = true;
                break;
            }
        }
        if (!found) {
            std::fprintf(stderr,
                         "faults_check: FAIL: no injection at site %s\n", site.c_str());
            return 1;
        }
    }
    for (const std::string& code : expect_codes) {
        bool found = false;
        for (const auto& r : rules->array()) {
            if (r.find("code")->str() == code && r.find("injected")->number() > 0) {
                found = true;
                break;
            }
        }
        if (!found) {
            std::fprintf(stderr, "faults_check: FAIL: no injected %s fault\n",
                         code.c_str());
            return 1;
        }
    }

    std::printf("faults_check: OK: %g injection(s) across %zu rule(s)\n",
                total->number(), rules->array().size());
    return 0;
}
