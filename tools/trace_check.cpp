// trace_check — validates a Chrome trace-event file produced by cupp::trace.
//
//   trace_check <trace.json> [--require-kernels] [--require-transfers]
//               [--require-lazy-counters] [--require-device-track]
//               [--require-stream-lanes] [--require-counters=<prefix>]
//
// Exit code 0 iff the file parses as JSON, has a non-empty traceEvents
// array, and satisfies every requested structural check. Used by the CTest
// case that runs boids_demo under CUPP_TRACE, and handy standalone when
// eyeballing a trace before loading it into Perfetto.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "cupp/detail/minijson.hpp"

namespace {

int fail(const char* what) {
    std::fprintf(stderr, "trace_check: FAIL: %s\n", what);
    return 1;
}

bool has_string(const cupp::minijson::Value& obj, const char* key) {
    const auto* v = obj.find(key);
    return v != nullptr && v->is_string();
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: trace_check <trace.json> [--require-kernels] "
                     "[--require-transfers] [--require-lazy-counters] "
                     "[--require-device-track] [--require-stream-lanes] "
                     "[--require-counters=<prefix>]\n");
        return 2;
    }
    bool want_kernels = false, want_transfers = false;
    bool want_lazy = false, want_device_track = false, want_stream_lanes = false;
    std::string counter_prefix;  // --require-counters=<prefix>; empty = not asked
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--require-kernels") == 0) want_kernels = true;
        else if (std::strcmp(argv[i], "--require-transfers") == 0) want_transfers = true;
        else if (std::strcmp(argv[i], "--require-lazy-counters") == 0) want_lazy = true;
        else if (std::strcmp(argv[i], "--require-device-track") == 0) want_device_track = true;
        else if (std::strcmp(argv[i], "--require-stream-lanes") == 0) want_stream_lanes = true;
        else if (std::strncmp(argv[i], "--require-counters=", 19) == 0) {
            counter_prefix = argv[i] + 19;
            if (counter_prefix.empty()) {
                std::fprintf(stderr, "trace_check: --require-counters needs a prefix\n");
                return 2;
            }
        }
        else {
            std::fprintf(stderr, "trace_check: unknown flag %s\n", argv[i]);
            return 2;
        }
    }

    std::ifstream in(argv[1], std::ios::binary);
    if (!in) return fail("cannot open trace file");
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    if (text.empty()) return fail("trace file is empty");

    cupp::minijson::Value root;
    try {
        root = cupp::minijson::parse(text);
    } catch (const cupp::minijson::parse_error& e) {
        std::fprintf(stderr, "trace_check: FAIL: invalid JSON: %s\n", e.what());
        return 1;
    }
    if (!root.is_object()) return fail("top level is not an object");
    const auto* events = root.find("traceEvents");
    if (events == nullptr || !events->is_array()) return fail("no traceEvents array");
    if (events->array().empty()) return fail("traceEvents is empty");

    std::size_t kernel_spans = 0, transfer_events = 0, prefixed_counters = 0;
    std::set<std::string> track_names;  // resolved via thread_name metadata
    bool lazy_counters = false;
    for (const auto& ev : events->array()) {
        if (!ev.is_object()) return fail("traceEvents entry is not an object");
        const auto* ph = ev.find("ph");
        const auto* name = ev.find("name");
        if (ph == nullptr || !ph->is_string()) return fail("event without ph");
        if (name == nullptr || !name->is_string()) return fail("event without name");
        const std::string& phase = ph->str();
        const std::string& label = name->str();

        if (phase == "M" && label == "thread_name") {
            const auto* args = ev.find("args");
            if (args != nullptr && args->is_object() && has_string(*args, "name")) {
                track_names.insert(args->find("name")->str());
            }
            continue;
        }
        if (phase == "X") {
            const auto* ts = ev.find("ts");
            const auto* dur = ev.find("dur");
            if (ts == nullptr || !ts->is_number()) return fail("X event without ts");
            if (dur == nullptr || !dur->is_number()) return fail("X event without dur");
            if (dur->number() < 0) return fail("X event with negative dur");
            const auto* args = ev.find("args");
            const bool has_bytes = args != nullptr && args->is_object() &&
                                   args->find("bytes") != nullptr &&
                                   args->find("bytes")->is_number();
            // Retry backoff spans name the retried site ("cupp::retry
            // vector upload (failure 1)") but move no data themselves —
            // they are not transfers and carry no byte count.
            const bool is_transfer =
                label.rfind("cupp::retry", 0) != 0 &&
                (label.rfind("memcpy ", 0) == 0 ||
                 (label.rfind("cupp::", 0) == 0 &&
                  (label.find("upload") != std::string::npos ||
                   label.find("download") != std::string::npos)));
            if (is_transfer) {
                if (!has_bytes) return fail("transfer span without byte count");
                ++transfer_events;
            }
            if (label.rfind("cupp::call", 0) == 0 || label.rfind("launch ", 0) == 0) {
                ++kernel_spans;
            }
        }
        if (phase == "C" && label.rfind("cupp.vector.lazy.", 0) == 0) {
            lazy_counters = true;
        }
        if (phase == "C" && !counter_prefix.empty() &&
            label.rfind(counter_prefix, 0) == 0) {
            ++prefixed_counters;
        }
    }

    bool device_track = false, host_track = false;
    std::size_t stream_lanes = 0;
    for (const auto& t : track_names) {
        if (t.find(".device") != std::string::npos) device_track = true;
        if (t.find(".host") != std::string::npos) host_track = true;
        if (t.find(".stream") != std::string::npos) ++stream_lanes;
    }

    if (want_kernels && kernel_spans == 0) return fail("no kernel-launch spans");
    if (want_transfers && transfer_events == 0) return fail("no transfer events with bytes");
    if (want_lazy && !lazy_counters) return fail("no lazy-copy counter samples");
    if (want_device_track && !(device_track && host_track)) {
        return fail("host and device tracks not both present");
    }
    if (want_stream_lanes && stream_lanes == 0) return fail("no per-stream trace lanes");
    if (!counter_prefix.empty() && prefixed_counters == 0) {
        std::fprintf(stderr, "trace_check: FAIL: no counter samples with prefix %s\n",
                     counter_prefix.c_str());
        return 1;
    }

    std::printf("trace_check: OK: %zu events, %zu kernel spans, %zu transfers, "
                "%zu named tracks\n",
                events->array().size(), kernel_spans, transfer_events,
                track_names.size());
    return 0;
}
